package sim

import (
	"errors"
	"math"
	"testing"

	"dcnflow/internal/baseline"
	"dcnflow/internal/core"
	"dcnflow/internal/flow"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
	"dcnflow/internal/timeline"
	"dcnflow/internal/topology"
)

func almostEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff/scale <= tol
}

func TestRunMatchesAnalyticEnergy(t *testing.T) {
	ft, err := topology.FatTree(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.Uniform(flow.GenConfig{
		N: 25, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Sigma: 0.5, Mu: 1, Alpha: 2, C: 1e9}
	dres, err := baseline.SPMCF(ft.Graph, fs, m)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := Run(ft.Graph, fs, dres.Schedule, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sres.DynamicEnergy, dres.Schedule.EnergyDynamic(m), 1e-6) {
		t.Fatalf("sim dynamic %v vs analytic %v", sres.DynamicEnergy, dres.Schedule.EnergyDynamic(m))
	}
	if !almostEqual(sres.TotalEnergy, dres.Schedule.EnergyTotal(m), 1e-6) {
		t.Fatalf("sim total %v vs analytic %v", sres.TotalEnergy, dres.Schedule.EnergyTotal(m))
	}
	if sres.DeadlinesMissed != 0 {
		t.Fatalf("missed %d deadlines in an optimal schedule", sres.DeadlinesMissed)
	}
	if sres.DeadlinesMet != fs.Len() {
		t.Fatalf("met %d, want %d", sres.DeadlinesMet, fs.Len())
	}
}

func TestRunDetectsMissedDeadline(t *testing.T) {
	line, err := topology.Line(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet([]flow.Flow{
		{Src: line.Hosts[0], Dst: line.Hosts[2], Release: 0, Deadline: 2, Size: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := line.Graph.ShortestPath(line.Hosts[0], line.Hosts[2])
	if err != nil {
		t.Fatal(err)
	}
	// A schedule that transmits only half the data.
	sched := schedule.New(timeline.Interval{Start: 0, End: 2})
	if err := sched.SetFlow(&schedule.FlowSchedule{
		FlowID: 0, Path: p,
		Segments: []schedule.RateSegment{{Interval: timeline.Interval{Start: 0, End: 1}, Rate: 5}},
	}); err != nil {
		t.Fatal(err)
	}
	m := power.Model{Sigma: 0.1, Mu: 1, Alpha: 2, C: 10}
	res, err := Run(line.Graph, fs, sched, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlinesMissed != 1 || res.DeadlinesMet != 0 {
		t.Fatalf("met/missed = %d/%d, want 0/1", res.DeadlinesMet, res.DeadlinesMissed)
	}
	if !math.IsInf(res.Flows[0].CompletionTime, 1) {
		t.Fatalf("completion time = %v, want +Inf", res.Flows[0].CompletionTime)
	}
}

func TestRunDetectsCapacityViolation(t *testing.T) {
	line, err := topology.Line(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet([]flow.Flow{
		{Src: line.Hosts[0], Dst: line.Hosts[2], Release: 0, Deadline: 2, Size: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := line.Graph.ShortestPath(line.Hosts[0], line.Hosts[2])
	if err != nil {
		t.Fatal(err)
	}
	sched := schedule.New(timeline.Interval{Start: 0, End: 2})
	if err := sched.SetFlow(&schedule.FlowSchedule{
		FlowID: 0, Path: p,
		Segments: []schedule.RateSegment{{Interval: timeline.Interval{Start: 0, End: 2}, Rate: 4}},
	}); err != nil {
		t.Fatal(err)
	}
	m := power.Model{Sigma: 0.1, Mu: 1, Alpha: 2, C: 2}
	res, err := Run(line.Graph, fs, sched, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityViolations == 0 {
		t.Fatal("rate 4 on C=2 link not flagged")
	}
	if !almostEqual(res.MaxLinkRate, 4, 1e-9) {
		t.Fatalf("MaxLinkRate = %v, want 4", res.MaxLinkRate)
	}
}

func TestRunCompletionInterpolation(t *testing.T) {
	line, err := topology.Line(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet([]flow.Flow{
		{Src: line.Hosts[0], Dst: line.Hosts[1], Release: 0, Deadline: 10, Size: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := line.Graph.ShortestPath(line.Hosts[0], line.Hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	sched := schedule.New(timeline.Interval{Start: 0, End: 10})
	if err := sched.SetFlow(&schedule.FlowSchedule{
		FlowID: 0, Path: p,
		Segments: []schedule.RateSegment{{Interval: timeline.Interval{Start: 0, End: 10}, Rate: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	m := power.Model{Sigma: 0, Mu: 1, Alpha: 2, C: 10}
	res, err := Run(line.Graph, fs, sched, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Flows[0].CompletionTime, 3, 1e-9) {
		t.Fatalf("completion time = %v, want 3", res.Flows[0].CompletionTime)
	}
}

func TestRunBadInput(t *testing.T) {
	line, err := topology.Line(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(nil, fs, schedule.New(timeline.Interval{}), power.Model{Mu: 1, Alpha: 2}, Options{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v, want ErrBadInput", err)
	}
	if _, err := Run(line.Graph, fs, schedule.New(timeline.Interval{}), power.Model{Mu: 1, Alpha: 1}, Options{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("bad model err = %v, want ErrBadInput", err)
	}
}

func TestVerifyEDFTimeSharingOnRandomSchedule(t *testing.T) {
	ft, err := topology.FatTree(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.Uniform(flow.GenConfig{
		N: 20, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Sigma: 0.5, Mu: 1, Alpha: 2, C: 1e9}
	res, err := core.SolveDCFSR(core.DCFSRInput{Graph: ft.Graph, Flows: fs, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	report, err := VerifyEDFTimeSharing(ft.Graph, fs, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("Theorem 4 violated: %v", report.Violations)
	}
	if report.LinksChecked == 0 || report.IntervalsChecked == 0 {
		t.Fatal("EDF check examined nothing")
	}
}

func TestVerifyEDFTimeSharingBadInput(t *testing.T) {
	line, err := topology.Line(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet([]flow.Flow{
		{Src: line.Hosts[0], Dst: line.Hosts[1], Release: 0, Deadline: 1, Size: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyEDFTimeSharing(nil, fs, schedule.New(timeline.Interval{})); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v, want ErrBadInput", err)
	}
	// Unscheduled flow.
	if _, err := VerifyEDFTimeSharing(line.Graph, fs, schedule.New(timeline.Interval{})); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v, want ErrBadInput", err)
	}
}

func TestRunOnRandomScheduleOutput(t *testing.T) {
	// End-to-end: Random-Schedule output simulated; energies agree and all
	// deadlines hold.
	ft, err := topology.FatTree(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.Uniform(flow.GenConfig{
		N: 15, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Sigma: 0.5, Mu: 1, Alpha: 2, C: 1e9}
	res, err := core.SolveDCFSR(core.DCFSRInput{Graph: ft.Graph, Flows: fs, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := Run(ft.Graph, fs, res.Schedule, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sres.DeadlinesMissed != 0 {
		t.Fatalf("Random-Schedule missed %d deadlines", sres.DeadlinesMissed)
	}
	if !almostEqual(sres.TotalEnergy, res.Schedule.EnergyTotal(m), 1e-6) {
		t.Fatalf("sim energy %v vs analytic %v", sres.TotalEnergy, res.Schedule.EnergyTotal(m))
	}
}
