package sim

import (
	"fmt"
	"sort"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
)

// OnlineEngine is an online scheduler drivable by ReplayOnline. Flows are
// revealed at their release instants; the engine decides when to (re-)plan
// as simulated time advances. Both the marginal-cost greedy scheduler and
// the rolling-horizon re-optimizer in internal/online implement it.
type OnlineEngine interface {
	// Arrive reveals one flow at its release time. The engine may place it
	// immediately (greedy), queue it for the next epoch re-solve (rolling),
	// or reject it under admission control; rejections are not errors.
	Arrive(f flow.Flow) error
	// AdvanceTo moves simulated time forward, processing any re-plan
	// boundaries due in (previous time, t].
	AdvanceTo(t float64) error
	// Finish completes the run and returns the final schedule covering
	// every admitted flow.
	Finish() (*schedule.Schedule, error)
}

// ReplayResult is the outcome of an event-driven online replay.
type ReplayResult struct {
	// Schedule is the engine's final schedule.
	Schedule *schedule.Schedule
	// Sim is the post-hoc simulation of that schedule against the full
	// flow set; rejected flows count toward its DeadlinesMissed.
	Sim *Result
	// Admitted and Rejected partition the flow set by whether the engine
	// scheduled the flow.
	Admitted, Rejected int
	// DeadlineViolations counts admitted flows whose simulated completion
	// missed the deadline — zero for a correct engine, whatever its
	// admission policy.
	DeadlineViolations int
	// CapacityViolations echoes the simulator's count of (link, event)
	// pairs exceeding capacity.
	CapacityViolations int
	// Energy is the simulator-measured total energy (Eq. 5).
	Energy float64
}

// ReplayOnline drives an online scheduling engine through an event-driven
// replay of the flow set: arrivals are interleaved with the engine's own
// re-plan boundaries in simulated-time order, and the resulting schedule is
// validated post hoc by the discrete-event simulator (deadlines of every
// admitted flow, link capacities, independently integrated energy).
func ReplayOnline(g *graph.Graph, flows *flow.Set, m power.Model, engine OnlineEngine, opts Options) (*ReplayResult, error) {
	if g == nil || flows == nil || engine == nil {
		return nil, fmt.Errorf("%w: nil argument", ErrBadInput)
	}
	ordered := flows.Flows()
	sort.SliceStable(ordered, func(a, b int) bool {
		if ordered[a].Release != ordered[b].Release {
			return ordered[a].Release < ordered[b].Release
		}
		return ordered[a].ID < ordered[b].ID
	})
	for _, f := range ordered {
		if err := engine.AdvanceTo(f.Release); err != nil {
			return nil, fmt.Errorf("sim: replay advance to %v: %w", f.Release, err)
		}
		if err := engine.Arrive(f); err != nil {
			return nil, fmt.Errorf("sim: replay arrival of flow %d: %w", f.ID, err)
		}
	}
	_, t1 := flows.Horizon()
	if err := engine.AdvanceTo(t1); err != nil {
		return nil, fmt.Errorf("sim: replay final advance: %w", err)
	}
	sched, err := engine.Finish()
	if err != nil {
		return nil, fmt.Errorf("sim: replay finish: %w", err)
	}

	simRes, err := Run(g, flows, sched, m, opts)
	if err != nil {
		return nil, err
	}
	out := &ReplayResult{
		Schedule:           sched,
		Sim:                simRes,
		CapacityViolations: simRes.CapacityViolations,
		Energy:             simRes.TotalEnergy,
	}
	for _, fs := range simRes.Flows {
		if sched.FlowSchedule(fs.ID) == nil {
			out.Rejected++
			continue
		}
		out.Admitted++
		if !fs.DeadlineMet {
			out.DeadlineViolations++
		}
	}
	return out, nil
}
