package dcnflow

import (
	"errors"
	"fmt"
)

// ErrBadInstance reports an Instance that failed validation: nil graph or
// flows, an invalid power model, flow endpoints missing from the graph, or a
// fixed routing that is not a valid path set.
var ErrBadInstance = errors.New("dcnflow: invalid instance")

// Instance is a fully validated problem instance of the Scenario/Solver
// API: the network graph, the deadline-constrained flow set, the link power
// model and the scheduling horizon, checked once at construction so every
// registered Solver can consume it without re-validating. Build one with
// NewInstance (the common case) or NewInstanceBuilder (optional routing,
// horizon override, topology attachment), or declaratively from a
// ScenarioSpec via its Instance method.
//
// An Instance is immutable after Build and safe for concurrent use by
// multiple solvers.
type Instance struct {
	graph   *Graph
	flows   *FlowSet
	model   PowerModel
	horizon Interval
	topo    *Topology
	paths   map[FlowID]Path
}

// NewInstance validates and packages a problem instance with the default
// horizon (the flow set's span) and no fixed routing.
func NewInstance(g *Graph, flows *FlowSet, m PowerModel) (*Instance, error) {
	return NewInstanceBuilder().Graph(g).Flows(flows).Model(m).Build()
}

// Graph returns the network graph.
func (in *Instance) Graph() *Graph { return in.graph }

// Flows returns the flow set.
func (in *Instance) Flows() *FlowSet { return in.flows }

// Model returns the link power model.
func (in *Instance) Model() PowerModel { return in.model }

// Horizon returns the scheduling horizon: the flow set's span unless the
// builder overrode it.
func (in *Instance) Horizon() Interval { return in.horizon }

// Topology returns the topology the graph came from, when the instance was
// built from one (NewInstanceBuilder.Topology or a ScenarioSpec); nil
// otherwise. Solvers never need it, but callers often want the host list.
func (in *Instance) Topology() *Topology { return in.topo }

// Routing returns the optional fixed routing (nil when the instance leaves
// routing to the solver). The "dcfs-mcf" solver schedules on exactly these
// paths; routing-and-scheduling solvers ignore them.
func (in *Instance) Routing() map[FlowID]Path { return in.paths }

// InstanceBuilder assembles an Instance step by step. Methods return the
// builder for chaining; errors are deferred and reported once by Build.
type InstanceBuilder struct {
	g       *Graph
	topo    *Topology
	flows   *FlowSet
	model   PowerModel
	horizon *Interval
	paths   map[FlowID]Path
}

// NewInstanceBuilder starts an empty builder.
func NewInstanceBuilder() *InstanceBuilder { return &InstanceBuilder{} }

// Graph sets the network graph.
func (b *InstanceBuilder) Graph(g *Graph) *InstanceBuilder {
	b.g = g
	return b
}

// Topology sets the graph from a generated topology and attaches the
// topology to the instance (Instance.Topology).
func (b *InstanceBuilder) Topology(t *Topology) *InstanceBuilder {
	b.topo = t
	if t != nil {
		b.g = t.Graph
	}
	return b
}

// Flows sets the flow set.
func (b *InstanceBuilder) Flows(fs *FlowSet) *InstanceBuilder {
	b.flows = fs
	return b
}

// Model sets the link power model.
func (b *InstanceBuilder) Model(m PowerModel) *InstanceBuilder {
	b.model = m
	return b
}

// Horizon overrides the scheduling horizon (default: the flow set's span).
// It must contain every flow's [Release, Deadline] window. The online
// solvers ("greedy-online", "rolling-online") use it as the run window —
// a wider window changes the rolling scheduler's default replan cadence
// and the span idle energy is accounted over. The offline solvers always
// schedule over the flow span; for them the override is only validated.
func (b *InstanceBuilder) Horizon(iv Interval) *InstanceBuilder {
	b.horizon = &iv
	return b
}

// Routing fixes each flow's path, turning a joint routing-and-scheduling
// instance into a scheduling-only one (the "dcfs-mcf" solver's input).
func (b *InstanceBuilder) Routing(paths map[FlowID]Path) *InstanceBuilder {
	b.paths = paths
	return b
}

// Build validates everything once and returns the immutable Instance.
func (b *InstanceBuilder) Build() (*Instance, error) {
	if b.g == nil {
		return nil, fmt.Errorf("%w: nil graph", ErrBadInstance)
	}
	if b.flows == nil {
		return nil, fmt.Errorf("%w: nil flow set", ErrBadInstance)
	}
	if err := b.model.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInstance, err)
	}
	for _, f := range b.flows.Flows() {
		if !b.g.HasNode(f.Src) || !b.g.HasNode(f.Dst) {
			return nil, fmt.Errorf("%w: flow %d endpoints %d->%d not in graph", ErrBadInstance, f.ID, f.Src, f.Dst)
		}
	}
	t0, t1 := b.flows.Horizon()
	horizon := Interval{Start: t0, End: t1}
	if b.horizon != nil {
		if b.flows.Len() > 0 && (b.horizon.Start > t0 || b.horizon.End < t1) {
			return nil, fmt.Errorf("%w: horizon %v does not contain the flow span [%v, %v]",
				ErrBadInstance, *b.horizon, t0, t1)
		}
		horizon = *b.horizon
	}
	if b.paths != nil {
		for _, f := range b.flows.Flows() {
			p, ok := b.paths[f.ID]
			if !ok {
				return nil, fmt.Errorf("%w: routing misses flow %d", ErrBadInstance, f.ID)
			}
			if err := p.Validate(b.g, f.Src, f.Dst); err != nil {
				return nil, fmt.Errorf("%w: routing for flow %d: %v", ErrBadInstance, f.ID, err)
			}
		}
	}
	return &Instance{
		graph:   b.g,
		flows:   b.flows,
		model:   b.model,
		horizon: horizon,
		topo:    b.topo,
		paths:   b.paths,
	}, nil
}
