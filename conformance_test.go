package dcnflow_test

import (
	"context"
	"reflect"
	"testing"

	"dcnflow"
)

// conformanceSpec is the randomized corpus of the cross-solver conformance
// suite: sweep-generated scenarios (three topology families, two randomized
// workload kinds, two deadline-tightness levels, two seeds) crossed with
// every registered solver family. Randomized-release workloads keep the
// corpus feasible for the always-on strawman, which transmits each flow at
// the full link rate C from its release — a shared-release pattern
// (shuffle, incast) would stack those bursts past C by construction.
func conformanceSpec() *dcnflow.SweepSpec {
	return &dcnflow.SweepSpec{
		Name: "conformance",
		Topologies: []dcnflow.TopologySpec{
			{Kind: "line", K: 4, Capacity: 1000},
			{Kind: "star", K: 4, Capacity: 1000},
			{Kind: "leafspine", Spines: 2, Leaves: 2, HostsPerLeaf: 2, Capacity: 1000},
		},
		Workloads: []dcnflow.WorkloadSpec{
			{Kind: "uniform", N: 5, T0: 1, T1: 40, SizeMean: 4, SizeStddev: 1},
			{Kind: "diurnal", N: 5, T0: 0, T1: 40, PeakFactor: 3, SizeMean: 3, SizeStddev: 1, SpanMean: 8},
		},
		Model:     dcnflow.ModelSpec{Mu: 1, Alpha: 2, C: 1000},
		Tightness: []float64{1, 0.7},
		Seeds:     []int64{1, 2},
		Solvers:   dcnflow.SolverNames(),
	}
}

func conformanceOptions(keep bool) dcnflow.SweepOptions {
	return dcnflow.SweepOptions{
		Workers:       4,
		KeepSolutions: keep,
		Options: []dcnflow.SolveOption{
			dcnflow.WithSolverOptions(dcnflow.SolverOptions{MaxIters: 20}),
		},
	}
}

// TestConformanceAllSolvers is the cross-solver conformance suite: on every
// randomized corpus scenario, every registered solver family must return a
// schedule the simulator validates — every deadline met, every demand
// completed, no link-capacity violation — and report an energy no smaller
// than its own lower bound when it produces one.
func TestConformanceAllSolvers(t *testing.T) {
	spec := conformanceSpec()
	if len(spec.Solvers) < 8 {
		t.Fatalf("registry lists %d solvers, want the eight built-in families: %v", len(spec.Solvers), spec.Solvers)
	}
	res, err := dcnflow.Sweep(context.Background(), spec, conformanceOptions(true))
	if err != nil {
		t.Fatal(err)
	}

	// Scenario instances are rebuilt per cell group for the independent
	// simulator pass (the engine's own instances are not exposed).
	cells := spec.Cells()
	instances := make(map[string]*dcnflow.Instance)
	for _, c := range res.Cells {
		if c.Err != "" {
			t.Errorf("cell %d: solver %s failed on %s: %s", c.Cell, c.Solver, c.Scenario, c.Err)
			continue
		}
		sol := c.Solution
		if sol == nil || sol.Schedule == nil {
			t.Errorf("cell %d: %s on %s returned no schedule", c.Cell, c.Solver, c.Scenario)
			continue
		}
		inst, ok := instances[c.Scenario]
		if !ok {
			var err error
			inst, err = cells[c.Cell].Scenario.Instance()
			if err != nil {
				t.Fatalf("rebuilding scenario %s: %v", c.Scenario, err)
			}
			instances[c.Scenario] = inst
		}

		sim, err := dcnflow.Simulate(inst.Graph(), inst.Flows(), sol.Schedule, inst.Model(), dcnflow.SimOptions{})
		if err != nil {
			t.Errorf("cell %d: %s on %s: simulator rejected the schedule: %v", c.Cell, c.Solver, c.Scenario, err)
			continue
		}
		if sim.DeadlinesMissed != 0 {
			t.Errorf("cell %d: %s on %s missed %d deadlines", c.Cell, c.Solver, c.Scenario, sim.DeadlinesMissed)
		}
		if sim.CapacityViolations != 0 {
			t.Errorf("cell %d: %s on %s violated link capacity in %d event segments", c.Cell, c.Solver, c.Scenario, sim.CapacityViolations)
		}
		for _, fs := range sim.Flows {
			if !fs.DeadlineMet {
				t.Errorf("cell %d: %s on %s left flow %d incomplete (%.6g delivered)", c.Cell, c.Solver, c.Scenario, fs.ID, fs.Completed)
			}
		}
		if sol.LowerBound > 0 && sol.Energy < sol.LowerBound*(1-1e-9) {
			t.Errorf("cell %d: %s on %s reported energy %v below its own lower bound %v",
				c.Cell, c.Solver, c.Scenario, sol.Energy, sol.LowerBound)
		}
	}
}

// TestConformanceSeedReproducibility: the corpus solved twice — once
// through two independent sweep runs, once through back-to-back Solve calls
// on one (scratch-reusing) solver instance — must be bit-identical per
// seed: same energies, same bounds, same stats, same schedules.
func TestConformanceSeedReproducibility(t *testing.T) {
	spec := conformanceSpec()
	run := func() *dcnflow.SweepResult {
		t.Helper()
		res, err := dcnflow.Sweep(context.Background(), spec, conformanceOptions(true))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		if ca.Energy != cb.Energy || ca.LB != cb.LB || ca.LBRatio != cb.LBRatio || ca.Err != cb.Err {
			t.Errorf("cell %d (%s/%s) not bit-identical across runs: energy %v vs %v, LB %v vs %v",
				i, ca.Scenario, ca.Solver, ca.Energy, cb.Energy, ca.LB, cb.LB)
		}
		if !reflect.DeepEqual(ca.Stats, cb.Stats) {
			t.Errorf("cell %d (%s/%s) stats differ: %v vs %v", i, ca.Scenario, ca.Solver, ca.Stats, cb.Stats)
		}
		if ca.Solution != nil && cb.Solution != nil && !reflect.DeepEqual(ca.Solution.Schedule, cb.Solution.Schedule) {
			t.Errorf("cell %d (%s/%s) schedules differ across identically-seeded runs", i, ca.Scenario, ca.Solver)
		}
	}

	// Scratch-reuse half: one constructed solver, same instance, two
	// solves — per-worker reuse in the engine must never leak state.
	inst, err := spec.Cells()[0].Scenario.Instance()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range spec.Solvers {
		solver, err := dcnflow.NewSolver(name,
			dcnflow.WithSolverOptions(dcnflow.SolverOptions{MaxIters: 20}),
			dcnflow.WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		s1, err := solver.Solve(context.Background(), inst)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s2, err := solver.Solve(context.Background(), inst)
		if err != nil {
			t.Fatalf("%s (second solve): %v", name, err)
		}
		if s1.Energy != s2.Energy || s1.LowerBound != s2.LowerBound {
			t.Errorf("%s: repeated solves on one instance diverged: energy %v vs %v", name, s1.Energy, s2.Energy)
		}
		if !reflect.DeepEqual(s1.Stats, s2.Stats) {
			t.Errorf("%s: repeated solves changed stats: %v vs %v", name, s1.Stats, s2.Stats)
		}
		if !reflect.DeepEqual(s1.Schedule, s2.Schedule) {
			t.Errorf("%s: repeated solves produced different schedules", name)
		}
	}
}
