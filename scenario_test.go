package dcnflow_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strings"
	"testing"

	"dcnflow"
)

// TestScenarioGoldenRoundTrip pins the serialized spec format and the
// reproducibility contract: the canonical golden file re-serializes
// byte-identically, and two independent load → build → solve cycles of the
// same spec produce bit-identical energies and lower bounds.
func TestScenarioGoldenRoundTrip(t *testing.T) {
	const golden = "testdata/golden_scenario.json"
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := dcnflow.LoadScenarioFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dcnflow.SaveScenario(&buf, spec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("save(load(golden)) is not byte-identical to the golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	solve := func(s *dcnflow.ScenarioSpec) (energy, lb float64) {
		t.Helper()
		inst, err := s.Instance()
		if err != nil {
			t.Fatal(err)
		}
		sol, err := dcnflow.Solve(context.Background(), dcnflow.SolverDCFSR, inst, dcnflow.WithSeed(s.Seed))
		if err != nil {
			t.Fatal(err)
		}
		return sol.Energy, sol.LowerBound
	}
	e1, lb1 := solve(spec)
	if e1 <= 0 || lb1 <= 0 {
		t.Fatalf("golden solve degenerate: energy %v, LB %v", e1, lb1)
	}
	// Round-trip through the saved bytes and solve again.
	reloaded, err := dcnflow.LoadScenario(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	e2, lb2 := solve(reloaded)
	if e1 != e2 || lb1 != lb2 {
		t.Errorf("save/load changed the solve: energy %v -> %v, LB %v -> %v", e1, e2, lb1, lb2)
	}
}

// TestSaveScenarioFileRoundTrip exercises the file-path variants.
func TestSaveScenarioFileRoundTrip(t *testing.T) {
	spec, err := dcnflow.LoadScenarioFile("testdata/golden_scenario.json")
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/spec.json"
	if err := dcnflow.SaveScenarioFile(path, spec); err != nil {
		t.Fatal(err)
	}
	back, err := dcnflow.LoadScenarioFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if *back != *spec {
		t.Errorf("file round-trip changed the spec: %+v != %+v", back, spec)
	}
}

// TestLoadScenarioRejectsMalformed guards the error surface: every broken
// spec is rejected with ErrBadScenario and a message naming the problem.
func TestLoadScenarioRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, input, wantMsg string
	}{
		{"not json", `{{`, ""},
		{"unknown field", `{"bogus": 1, "topology": {"kind": "fattree", "k": 4, "capacity": 1}, "workload": {"kind": "uniform", "n": 1, "t1": 9, "size_mean": 1}, "model": {"mu": 1, "alpha": 2}}`, "bogus"},
		{"unknown topology", `{"topology": {"kind": "torus", "capacity": 1}, "workload": {"kind": "uniform", "n": 1, "t1": 9, "size_mean": 1}, "model": {"mu": 1, "alpha": 2}}`, "topology kind"},
		{"unknown workload", `{"topology": {"kind": "fattree", "k": 4, "capacity": 1}, "workload": {"kind": "poisson"}, "model": {"mu": 1, "alpha": 2}}`, "workload kind"},
		{"no capacity", `{"topology": {"kind": "fattree", "k": 4}, "workload": {"kind": "uniform", "n": 1, "t1": 9, "size_mean": 1}, "model": {"mu": 1, "alpha": 2}}`, "capacity"},
		{"bad model", `{"topology": {"kind": "fattree", "k": 4, "capacity": 1}, "workload": {"kind": "uniform", "n": 1, "t1": 9, "size_mean": 1}, "model": {"mu": -1, "alpha": 2}}`, "model"},
		{"empty horizon", `{"topology": {"kind": "fattree", "k": 4, "capacity": 1}, "workload": {"kind": "uniform", "n": 1, "t0": 9, "t1": 9, "size_mean": 1}, "model": {"mu": 1, "alpha": 2}}`, "horizon"},
		{"zero flows", `{"topology": {"kind": "fattree", "k": 4, "capacity": 1}, "workload": {"kind": "uniform", "t1": 9, "size_mean": 1}, "model": {"mu": 1, "alpha": 2}}`, "n must be positive"},
		{"incast one host", `{"topology": {"kind": "fattree", "k": 4, "capacity": 1}, "workload": {"kind": "incast", "hosts": 1, "deadline": 5, "size": 1}, "model": {"mu": 1, "alpha": 2}}`, "hosts"},
		{"trailing garbage", `{"topology": {"kind": "fattree", "k": 4, "capacity": 1}, "workload": {"kind": "uniform", "n": 1, "t1": 9, "size_mean": 1}, "model": {"mu": 1, "alpha": 2}} {"again": true}`, "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := dcnflow.LoadScenario(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("malformed spec accepted: %s", tc.input)
			}
			if !errors.Is(err, dcnflow.ErrBadScenario) {
				t.Errorf("error does not wrap ErrBadScenario: %v", err)
			}
			if tc.wantMsg != "" && !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}

// FuzzLoadScenario asserts LoadScenario is total: arbitrary input either
// yields a spec that validates and round-trips, or an ErrBadScenario-class
// error — never a panic, never a silently invalid spec.
func FuzzLoadScenario(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"topology": {"kind": "fattree", "k": 4, "capacity": 1000}, "workload": {"kind": "uniform", "n": 4, "t1": 10, "size_mean": 2}, "model": {"mu": 1, "alpha": 2}}`,
		`{"topology": {"kind": "line", "k": 3, "capacity": 5}, "workload": {"kind": "shuffle", "hosts": 2, "deadline": 4, "size": 1}, "model": {"sigma": 1, "mu": 1, "alpha": 4, "c": 5}}`,
		`{"bogus": true}`,
		`[1, 2, 3]`,
		`{"topology": {"kind": "torus"}}`,
		"null",
		"",
	}
	if data, err := os.ReadFile("testdata/golden_scenario.json"); err == nil {
		seeds = append(seeds, string(data))
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := dcnflow.LoadScenario(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("LoadScenario accepted a spec that fails Validate: %v", verr)
		}
		var buf bytes.Buffer
		if err := dcnflow.SaveScenario(&buf, spec); err != nil {
			t.Fatalf("accepted spec does not save: %v", err)
		}
		back, err := dcnflow.LoadScenario(&buf)
		if err != nil {
			t.Fatalf("saved spec does not load back: %v", err)
		}
		if *back != *spec {
			t.Fatalf("round-trip changed the spec: %+v != %+v", back, spec)
		}
	})
}
