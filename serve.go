package dcnflow

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ServeRequest is the JSON body of the serve API's POST /v1/solve (and one
// element of /v1/batch): a ScenarioSpec-shaped problem plus the solver to
// run it with. The scenario's Seed seeds the solver exactly as `dcnflow
// run` does, so a served solve reproduces the CLI bit for bit.
type ServeRequest struct {
	// Scenario declares the problem (same schema as `dcnflow run` specs).
	Scenario ScenarioSpec `json:"scenario"`
	// Solver is the registered solver name.
	Solver string `json:"solver"`
	// TimeoutMS optionally bounds this request's solve in milliseconds;
	// the server clamps it to its own per-request ceiling. Zero/absent
	// means the server ceiling alone applies.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Priority is the admission class ("high", "normal" or "low"; empty =
	// "normal"). Under token-bucket admission pressure, queued requests
	// are admitted in priority order (arrival order within a class);
	// without admission control the field is echoed but inert.
	Priority string `json:"priority,omitempty"`
}

// Validate checks the request against the package-level registry: the
// scenario validates, the solver is registered and the timeout is
// non-negative. Errors wrap ErrBadRequest (or the scenario's own
// ErrBadScenario).
func (r *ServeRequest) Validate() error {
	if r == nil {
		return fmt.Errorf("%w: nil request", ErrBadRequest)
	}
	if err := r.Scenario.Validate(); err != nil {
		return err
	}
	registered := false
	for _, name := range SolverNames() {
		registered = registered || name == r.Solver
	}
	if !registered {
		return fmt.Errorf("%w: unknown solver %q (registered: %s)",
			ErrBadRequest, r.Solver, strings.Join(SolverNames(), ", "))
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("%w: negative timeout_ms %d", ErrBadRequest, r.TimeoutMS)
	}
	if _, ok := priorityRank(r.Priority); !ok {
		return fmt.Errorf("%w: unknown priority %q (want one of %s, or empty)",
			ErrBadRequest, r.Priority, strings.Join(PriorityClasses, ", "))
	}
	return nil
}

// ServeBatchRequest is the JSON body of POST /v1/batch.
type ServeBatchRequest struct {
	// Requests lists the batch; the response carries one result per entry
	// in the same order.
	Requests []ServeRequest `json:"requests"`
}

// ServeResponse is one solved request as the serve API reports it: the
// solver's accounted energy, its lower bound when it produces one and its
// diagnostic stats — everything `dcnflow run`'s table shows, minus the
// schedule body (which can be megabytes; recompute it locally from the
// spec when needed, solves are deterministic).
type ServeResponse struct {
	// Scenario echoes the request's scenario name (possibly empty).
	Scenario string `json:"scenario,omitempty"`
	// Solver echoes the registered solver name.
	Solver string `json:"solver"`
	// Energy is the solver's accounted total energy.
	Energy float64 `json:"energy,omitempty"`
	// LowerBound is the solver's own fractional bound, when it reports one.
	LowerBound float64 `json:"lower_bound,omitempty"`
	// Stats carries the solver's diagnostics (snake_case keys).
	Stats map[string]float64 `json:"stats,omitempty"`
	// CacheHit reports whether the engine served the request's
	// topology+model pair from its compiled-instance cache.
	CacheHit bool `json:"cache_hit"`
	// RuntimeMS is the wall-clock solve time on the server.
	RuntimeMS float64 `json:"runtime_ms"`
	// Error records a failed request (batch responses carry it per item;
	// single solves also signal it via the HTTP status).
	Error string `json:"error,omitempty"`
}

// ServeBatchResponse is the JSON body /v1/batch answers with.
type ServeBatchResponse struct {
	// Results holds one entry per batch request, in request order.
	Results []ServeResponse `json:"results"`
}

// ServeHealth is the JSON body GET /healthz answers with.
type ServeHealth struct {
	// Status is "ok" whenever the handler answers at all.
	Status string `json:"status"`
	// Solvers lists the solver names the server accepts.
	Solvers []string `json:"solvers"`
	// Cache snapshots the engine's compiled-instance cache counters
	// (summed across shards on a sharded server).
	Cache EngineStats `json:"cache"`
	// Shards is the engine shard count serving this endpoint.
	Shards int `json:"shards,omitempty"`
}

// DecodeServeRequest strictly decodes one JSON solve request, mirroring
// LoadScenario: unknown fields, trailing garbage and invalid parameter
// combinations are rejected with errors naming the problem, and an
// accepted request always validates. It never panics on any input
// (FuzzServeRequest).
func DecodeServeRequest(r io.Reader) (*ServeRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req ServeRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after the request object", ErrBadRequest)
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// EncodeServeRequest writes the request as canonical indented JSON
// (two-space indent, trailing newline), the byte form
// DecodeServeRequest(EncodeServeRequest(x)) round-trips identically.
func EncodeServeRequest(w io.Writer, req *ServeRequest) error {
	if err := req.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(req, "", "  ")
	if err != nil {
		return fmt.Errorf("dcnflow: encoding request: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ServeOptions configures NewServeHandler. The zero value caps every
// request at 60 seconds and batches at 64 requests, accepting every
// registered solver with admission control off.
type ServeOptions struct {
	// MaxTimeout is the per-request solve ceiling; requests may ask for
	// less via timeout_ms but never more. <= 0 selects 60s.
	MaxTimeout time.Duration
	// MaxBatch bounds the requests one /v1/batch call may carry; <= 0
	// selects 64.
	MaxBatch int
	// Solvers, when non-empty, restricts the solver names requests may
	// use (`dcnflow serve -solver` sets it); empty accepts every solver
	// registered in the package registry.
	Solvers []string
	// Admission configures token-bucket admission control; the zero value
	// admits everything immediately (see AdmissionOptions).
	Admission AdmissionOptions
}

// serveHandler is the HTTP face of an EngineGroup.
type serveHandler struct {
	group    *EngineGroup
	opts     ServeOptions
	allowed  map[string]bool
	adm      *admitter // nil when admission control is off
	metrics  *serveMetrics
	draining atomic.Bool
}

// ServeHandler is the serve API's http.Handler (returned by
// NewServeHandler and NewServeHandlerSharded) plus the lifecycle hook an
// embedding server needs: Drain flips the handler into shutdown mode so
// queued admissions fail fast with 503 while admitted in-flight requests
// run to completion under http.Server.Shutdown.
type ServeHandler struct {
	mux *http.ServeMux
	h   *serveHandler
}

// ServeHTTP dispatches to the API mux.
func (s *ServeHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain puts the handler into drain mode: every request queued for
// admission is released immediately with a clean 503, and every solve
// request arriving afterwards answers 503 without queueing — while
// already-admitted requests keep running, so a surrounding
// http.Server.Shutdown drains them gracefully. GET /healthz and
// GET /metrics keep answering. Idempotent and safe for concurrent use.
func (s *ServeHandler) Drain() {
	s.h.draining.Store(true)
	if s.h.adm != nil {
		s.h.adm.drain()
	}
}

// NewServeHandler wraps a warm Engine as the serve API's handler:
//
//	POST /v1/solve  — one ServeRequest in, one ServeResponse out
//	POST /v1/batch  — ServeBatchRequest in, ServeBatchResponse out
//	                  (per-item failures in the items, never a 5xx)
//	GET  /healthz   — ServeHealth (cache counters, accepted solvers)
//	GET  /metrics   — Prometheus text exposition (request counts by
//	                  outcome, latency histogram, cache and shard
//	                  counters, admission gauges)
//
// Malformed bodies answer 400, solver failures 422, per-request timeouts
// 504, admission rejections 429 (with Retry-After) and drains 503; all
// error bodies are {"error": "..."} JSON. The handler is safe for
// concurrent use — it is the `dcnflow serve` subcommand's core, exposed so
// embedders can mount the API on their own mux and tests can drive it via
// httptest. For a sharded backend use NewServeHandlerSharded.
func NewServeHandler(eng *Engine, opts ServeOptions) *ServeHandler {
	if eng == nil {
		eng = NewEngine(EngineOptions{})
	}
	return NewServeHandlerSharded(&EngineGroup{engines: []*Engine{eng}}, opts)
}

// NewServeHandlerSharded is NewServeHandler over a sharded EngineGroup:
// requests route to engine shards by topology fingerprint, so distinct
// topology populations stop evicting each other's compiled-instance
// caches. Solve results are bit-identical at every shard count.
func NewServeHandlerSharded(group *EngineGroup, opts ServeOptions) *ServeHandler {
	if group == nil || len(group.engines) == 0 {
		group = NewEngineGroup(1, EngineOptions{})
	}
	if opts.MaxTimeout <= 0 {
		opts.MaxTimeout = 60 * time.Second
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 64
	}
	h := &serveHandler{group: group, opts: opts, metrics: newServeMetrics()}
	if opts.Admission.enabled() {
		h.adm = newAdmitter(opts.Admission)
	}
	if len(opts.Solvers) > 0 {
		h.allowed = make(map[string]bool, len(opts.Solvers))
		for _, name := range opts.Solvers {
			h.allowed[name] = true
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", h.solve)
	mux.HandleFunc("POST /v1/batch", h.batch)
	mux.HandleFunc("GET /healthz", h.health)
	mux.HandleFunc("GET /metrics", h.metricsPage)
	return &ServeHandler{mux: mux, h: h}
}

// writeJSON writes v with the given status; encoding failures are ignored
// (the connection is gone).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}

// writeAdmitError answers a rejected admission (429/503), attaching the
// Retry-After hint when the admitter computed one.
func writeAdmitError(w http.ResponseWriter, aerr *admitError) {
	if aerr.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(aerr.retryAfter))
	} else if aerr.status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeError(w, aerr.status, errors.New(aerr.msg))
}

// admitOutcomeLabel maps an admission rejection to its metrics outcome.
func admitOutcomeLabel(aerr *admitError) string {
	if aerr.status == http.StatusTooManyRequests {
		return outcomeRejected
	}
	return outcomeDrained
}

// admit gates one solve-carrying request: drain mode answers an immediate
// 503, then — when admission control is on — the request runs the token
// bucket with its priority class. A nil return means the caller may solve.
func (h *serveHandler) admit(r *http.Request, class string) *admitError {
	if h.draining.Load() {
		return &admitError{status: http.StatusServiceUnavailable, msg: "server is draining"}
	}
	if h.adm == nil {
		return nil
	}
	return h.adm.admit(r.Context().Done(), class)
}

// timeout resolves one request's solve bound against the server ceiling.
func (h *serveHandler) timeout(req *ServeRequest) time.Duration {
	d := h.opts.MaxTimeout
	if req.TimeoutMS > 0 {
		if rd := time.Duration(req.TimeoutMS) * time.Millisecond; rd < d {
			d = rd
		}
	}
	return d
}

// allowedSolver guards the optional -solver allowlist.
func (h *serveHandler) allowedSolver(name string) error {
	if h.allowed != nil && !h.allowed[name] {
		return fmt.Errorf("%w: solver %q not served here (available: %s)",
			ErrBadRequest, name, strings.Join(h.opts.Solvers, ", "))
	}
	return nil
}

// run executes one validated request on the engine and shapes the reply,
// also returning the typed engine error (nil on success) so callers can
// classify it without re-parsing the stringified message.
func (h *serveHandler) run(ctx context.Context, req *ServeRequest) (ServeResponse, error) {
	resp := ServeResponse{Scenario: req.Scenario.Name, Solver: req.Solver}
	if err := h.allowedSolver(req.Solver); err != nil {
		resp.Error = err.Error()
		return resp, err
	}
	spec := req.Scenario
	r := h.group.Solve(ctx, Request{
		Scenario: &spec,
		Solver:   req.Solver,
		Timeout:  h.timeout(req),
	})
	resp.RuntimeMS = float64(r.Runtime) / float64(time.Millisecond)
	resp.CacheHit = r.CacheHit
	if r.Err != nil {
		resp.Error = r.Err.Error()
		return resp, r.Err
	}
	resp.Energy = r.Solution.Energy
	resp.LowerBound = r.Solution.LowerBound
	resp.Stats = r.Solution.Stats
	return resp, nil
}

func (h *serveHandler) solve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, err := DecodeServeRequest(r.Body)
	if err != nil {
		h.metrics.record("solve", outcomeBadRequest, "", time.Since(start).Seconds())
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if aerr := h.admit(r, req.Priority); aerr != nil {
		h.metrics.record("solve", admitOutcomeLabel(aerr), req.Priority, time.Since(start).Seconds())
		writeAdmitError(w, aerr)
		return
	}
	resp, solveErr := h.run(r.Context(), req)
	status := http.StatusOK
	outcome := outcomeOK
	if solveErr != nil {
		status = http.StatusUnprocessableEntity
		outcome = outcomeSolverError
		if errors.Is(solveErr, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
			outcome = outcomeTimeout
		}
	}
	h.metrics.record("solve", outcome, req.Priority, time.Since(start).Seconds())
	writeJSON(w, status, resp)
}

// batchClass resolves the admission class of a batch: the most urgent
// priority among its items (a batch is one admission unit; its width is
// bounded by MaxBatch).
func batchClass(reqs []ServeRequest) string {
	best, class := len(PriorityClasses), ""
	for i := range reqs {
		if rank, ok := priorityRank(reqs[i].Priority); ok && rank < best {
			best, class = rank, reqs[i].Priority
		}
	}
	return class
}

func (h *serveHandler) batch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	badBatch := func(err error) {
		h.metrics.record("batch", outcomeBadRequest, "", time.Since(start).Seconds())
		writeError(w, http.StatusBadRequest, err)
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var breq ServeBatchRequest
	if err := dec.Decode(&breq); err != nil {
		badBatch(fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	if dec.More() {
		badBatch(fmt.Errorf("%w: trailing data after the batch object", ErrBadRequest))
		return
	}
	if len(breq.Requests) == 0 {
		badBatch(fmt.Errorf("%w: empty batch", ErrBadRequest))
		return
	}
	if len(breq.Requests) > h.opts.MaxBatch {
		badBatch(fmt.Errorf("%w: batch of %d exceeds the %d-request limit", ErrBadRequest, len(breq.Requests), h.opts.MaxBatch))
		return
	}
	class := batchClass(breq.Requests)
	if aerr := h.admit(r, class); aerr != nil {
		h.metrics.record("batch", admitOutcomeLabel(aerr), class, time.Since(start).Seconds())
		writeAdmitError(w, aerr)
		return
	}
	results := make([]ServeResponse, len(breq.Requests))
	reqs := make([]Request, 0, len(breq.Requests))
	slots := make([]int, 0, len(breq.Requests))
	for i := range breq.Requests {
		sr := &breq.Requests[i]
		results[i] = ServeResponse{Scenario: sr.Scenario.Name, Solver: sr.Solver}
		// Per-item validation failures are per-item outcomes, exactly like
		// per-item solve failures — a bad request must not sink its batch.
		if err := sr.Validate(); err != nil {
			results[i].Error = err.Error()
			continue
		}
		if err := h.allowedSolver(sr.Solver); err != nil {
			results[i].Error = err.Error()
			continue
		}
		reqs = append(reqs, Request{
			Scenario: &breq.Requests[i].Scenario,
			Solver:   sr.Solver,
			Timeout:  h.timeout(sr),
		})
		slots = append(slots, i)
	}
	for j, res := range h.group.SolveBatch(r.Context(), reqs) {
		i := slots[j]
		results[i].RuntimeMS = float64(res.Runtime) / float64(time.Millisecond)
		results[i].CacheHit = res.CacheHit
		if res.Err != nil {
			results[i].Error = res.Err.Error()
			continue
		}
		results[i].Energy = res.Solution.Energy
		results[i].LowerBound = res.Solution.LowerBound
		results[i].Stats = res.Solution.Stats
	}
	ok := 0
	for i := range results {
		if results[i].Error == "" {
			ok++
		}
	}
	h.metrics.recordBatchItems(ok, len(results)-ok)
	h.metrics.record("batch", outcomeOK, class, time.Since(start).Seconds())
	writeJSON(w, http.StatusOK, ServeBatchResponse{Results: results})
}

func (h *serveHandler) health(w http.ResponseWriter, _ *http.Request) {
	solvers := h.opts.Solvers
	if len(solvers) == 0 {
		solvers = SolverNames()
	}
	writeJSON(w, http.StatusOK, ServeHealth{
		Status:  "ok",
		Solvers: solvers,
		Cache:   h.group.Stats(),
		Shards:  h.group.Shards(),
	})
}

// metricsPage answers GET /metrics with the Prometheus text exposition.
func (h *serveHandler) metricsPage(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	h.metrics.render(w, h.group.ShardStats(), h.adm)
}

// errServeNoBase reports a Client used without a base URL.
var errServeNoBase = errors.New("dcnflow: client needs a BaseURL")
