package dcnflow_test

import (
	"bytes"
	"math"
	"testing"

	"dcnflow"
)

func TestFacadeTopologies(t *testing.T) {
	vl2, err := dcnflow.VL2(2, 4, 8, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(vl2.Hosts) != 32 {
		t.Fatalf("VL2 hosts = %d, want 32", len(vl2.Hosts))
	}
	jf, err := dcnflow.Jellyfish(10, 3, 2, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(jf.Hosts) != 20 {
		t.Fatalf("Jellyfish hosts = %d, want 20", len(jf.Hosts))
	}
	st, err := dcnflow.Star(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Hosts) != 4 {
		t.Fatalf("Star hosts = %d, want 4", len(st.Hosts))
	}
	ls, err := dcnflow.LeafSpine(2, 4, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.Hosts) != 16 {
		t.Fatalf("LeafSpine hosts = %d, want 16", len(ls.Hosts))
	}
	bc, err := dcnflow.BCube(2, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(bc.Hosts) != 4 {
		t.Fatalf("BCube hosts = %d, want 4", len(bc.Hosts))
	}
}

func TestFacadeOnlineAndECMP(t *testing.T) {
	ft, err := dcnflow.FatTree(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := dcnflow.UniformWorkload(dcnflow.WorkloadConfig{
		N: 15, T0: 1, T1: 100, SizeMean: 8, SizeStddev: 2,
		Hosts: ft.Hosts, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1e9}
	on, err := dcnflow.SolveOnline(ft.Graph, flows, m, dcnflow.OnlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if on.Admitted != flows.Len() {
		t.Fatalf("online admitted %d of %d", on.Admitted, flows.Len())
	}
	ecmp, err := dcnflow.ECMPMCF(ft.Graph, flows, m, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ecmp.Schedule.EnergyTotal(m) <= 0 {
		t.Fatal("ECMP energy not positive")
	}
	// Incremental online admission through the scheduler type.
	t0, t1 := flows.Horizon()
	sch, err := dcnflow.NewOnlineScheduler(ft.Graph, m, dcnflow.Interval{Start: t0, End: t1}, dcnflow.OnlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flows.Flows() {
		if err := sch.Admit(f); err != nil {
			t.Fatalf("Admit(%d): %v", f.ID, err)
		}
	}
}

func TestFacadePacketLevel(t *testing.T) {
	ft, err := dcnflow.FatTree(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := dcnflow.UniformWorkload(dcnflow.WorkloadConfig{
		N: 8, T0: 1, T1: 50, SizeMean: 5, SizeStddev: 1,
		Hosts: ft.Hosts, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1e9}
	rs, err := dcnflow.SolveDCFSR(ft.Graph, flows, m, dcnflow.DCFSROptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := dcnflow.SimulatePacketLevel(ft.Graph, flows, rs.Schedule, dcnflow.PacketLevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for fid, c := range pl.Completion {
		if math.IsInf(c, 1) {
			t.Fatalf("flow %d undelivered", fid)
		}
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	flows, err := dcnflow.NewFlowSet([]dcnflow.Flow{
		{Src: 0, Dst: 1, Release: 1, Deadline: 5, Size: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dcnflow.WriteTrace(&buf, flows); err != nil {
		t.Fatal(err)
	}
	back, err := dcnflow.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 1 {
		t.Fatalf("round trip len = %d", back.Len())
	}
}

func TestFacadeWorkloadVariants(t *testing.T) {
	ft, err := dcnflow.FatTree(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	di, err := dcnflow.DiurnalWorkload(dcnflow.DiurnalConfig{
		N: 30, T0: 0, T1: 100, SizeMean: 5, SizeStddev: 1,
		Hosts: ft.Hosts, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if di.Len() != 30 {
		t.Fatalf("diurnal len = %d", di.Len())
	}
	in, err := dcnflow.IncastWorkload(ft.Hosts[0], ft.Hosts[1:5], 0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if in.Len() != 4 {
		t.Fatalf("incast len = %d", in.Len())
	}
	parts, err := dcnflow.SplitFlow(dcnflow.Flow{Src: 0, Dst: 1, Release: 0, Deadline: 4, Size: 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 || parts[0].Size != 2 {
		t.Fatalf("split = %+v", parts)
	}
	splitSet, err := dcnflow.SplitFlowSet(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if splitSet.Len() != 8 {
		t.Fatalf("split set len = %d, want 8", splitSet.Len())
	}
}

func TestFacadeExactSolver(t *testing.T) {
	top, src, dst, err := dcnflow.ParallelLinks(2, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := dcnflow.NewFlowSet([]dcnflow.Flow{
		{Src: src, Dst: dst, Release: 0, Deadline: 1, Size: 2},
		{Src: src, Dst: dst, Release: 0, Deadline: 1, Size: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1e9}
	exact, err := dcnflow.SolveDCFSRExact(top.Graph, flows, m, dcnflow.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: one flow per link at rate 2: 2 * (2^2 * 1) = 8.
	if math.Abs(exact.Energy-8) > 1e-9 {
		t.Fatalf("exact energy = %v, want 8", exact.Energy)
	}
	if exact.Assignments != 4 {
		t.Fatalf("assignments = %d, want 4", exact.Assignments)
	}
}

func TestFacadeRelaxationCostKinds(t *testing.T) {
	ft, err := dcnflow.FatTree(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := dcnflow.UniformWorkload(dcnflow.WorkloadConfig{
		N: 8, T0: 1, T1: 50, SizeMean: 5, SizeStddev: 1,
		Hosts: ft.Hosts, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := dcnflow.PowerModel{Sigma: 1, Mu: 1, Alpha: 2, C: 1e9}
	for _, kind := range []dcnflow.CostKind{dcnflow.CostDynamic, dcnflow.CostEnvelope} {
		res, err := dcnflow.SolveDCFSR(ft.Graph, flows, m, dcnflow.DCFSROptions{
			Seed:   1,
			Solver: dcnflow.SolverOptions{Cost: kind, MaxIters: 15},
		})
		if err != nil {
			t.Fatalf("cost kind %v: %v", kind, err)
		}
		if res.LowerBound <= 0 {
			t.Fatalf("cost kind %v: LB = %v", kind, res.LowerBound)
		}
	}
}
