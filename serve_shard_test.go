package dcnflow_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"dcnflow"
)

// shardCorpus builds a corpus of distinct scenarios spanning several
// topologies, so a sharded server actually routes to different shards.
func shardCorpus() []dcnflow.ServeRequest {
	var reqs []dcnflow.ServeRequest
	for i, k := range []int{3, 4, 5, 6} {
		spec := dcnflow.ScenarioSpec{
			Name:     fmt.Sprintf("shard-line-%d", k),
			Topology: dcnflow.TopologySpec{Kind: "line", K: k, Capacity: 100},
			Workload: dcnflow.WorkloadSpec{Kind: "shuffle", Hosts: 2, Release: 0, Deadline: 6 + float64(i), Size: 2},
			Model:    dcnflow.ModelSpec{Mu: 1, Alpha: 2, C: 100},
			Seed:     int64(i + 1),
		}
		reqs = append(reqs,
			dcnflow.ServeRequest{Scenario: spec, Solver: dcnflow.SolverSPMCF},
			dcnflow.ServeRequest{Scenario: spec, Solver: dcnflow.SolverGreedyOnline},
		)
	}
	for _, k := range []int{4, 6} {
		spec := dcnflow.ScenarioSpec{
			Name:     fmt.Sprintf("shard-fattree-%d", k),
			Topology: dcnflow.TopologySpec{Kind: "fattree", K: k, Capacity: 1000},
			Workload: dcnflow.WorkloadSpec{Kind: "uniform", N: 6, T0: 0, T1: 10, SizeMean: 2, SizeStddev: 1},
			Model:    dcnflow.ModelSpec{Mu: 1, Alpha: 2, C: 1000},
			Seed:     int64(k),
		}
		reqs = append(reqs, dcnflow.ServeRequest{Scenario: spec, Solver: dcnflow.SolverDCFSR})
	}
	return reqs
}

// normalizeServeBody strips the two legitimately nondeterministic fields
// (cache_hit, runtime_ms) and re-encodes, yielding the canonical bytes the
// determinism contract covers.
func normalizeServeBody(t *testing.T, raw []byte) []byte {
	t.Helper()
	var resp dcnflow.ServeResponse
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("decoding serve body %q: %v", raw, err)
	}
	if resp.Error != "" {
		t.Fatalf("served solve failed: %s", resp.Error)
	}
	resp.CacheHit = false
	resp.RuntimeMS = 0
	out, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServeShardDeterminism: the acceptance test of the sharded server —
// solve bodies (energy, bound, stats) are byte-identical at shard counts
// 1, 2 and 8 under concurrent load, and every served energy is
// bit-identical to a direct Engine solve of the same request.
func TestServeShardDeterminism(t *testing.T) {
	corpus := shardCorpus()

	// Reference: direct Engine solves, no HTTP anywhere.
	eng := dcnflow.NewEngine(dcnflow.EngineOptions{})
	direct := make([]float64, len(corpus))
	for i, req := range corpus {
		spec := req.Scenario
		res := eng.Solve(context.Background(), dcnflow.Request{Scenario: &spec, Solver: req.Solver})
		if res.Err != nil {
			t.Fatalf("direct solve %d (%s/%s): %v", i, spec.Name, req.Solver, res.Err)
		}
		direct[i] = res.Solution.Energy
	}

	const repeats = 3                // same request raced from several goroutines
	bodies := make(map[int][][]byte) // shard count -> normalized body per corpus index
	for _, shards := range []int{1, 2, 8} {
		group := dcnflow.NewEngineGroup(shards, dcnflow.EngineOptions{})
		srv := httptest.NewServer(dcnflow.NewServeHandlerSharded(group, dcnflow.ServeOptions{}))

		got := make([][]byte, len(corpus)*repeats)
		var wg sync.WaitGroup
		errs := make(chan error, len(got))
		for slot := range got {
			slot := slot
			req := corpus[slot%len(corpus)]
			wg.Add(1)
			go func() {
				defer wg.Done()
				var buf bytes.Buffer
				if err := json.NewEncoder(&buf).Encode(req); err != nil {
					errs <- err
					return
				}
				resp, err := srv.Client().Post(srv.URL+"/v1/solve", "application/json", &buf)
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("slot %d: status %d", slot, resp.StatusCode)
					return
				}
				var body bytes.Buffer
				if _, err := body.ReadFrom(resp.Body); err != nil {
					errs <- err
					return
				}
				got[slot] = body.Bytes()
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		srv.Close()

		norm := make([][]byte, len(corpus))
		for slot, raw := range got {
			n := normalizeServeBody(t, raw)
			i := slot % len(corpus)
			if norm[i] == nil {
				norm[i] = n
			} else if !bytes.Equal(norm[i], n) {
				t.Fatalf("shards=%d: racing repeats of request %d diverged:\n%s\nvs\n%s", shards, i, norm[i], n)
			}
		}
		bodies[shards] = norm
	}

	for i := range corpus {
		ref := bodies[1][i]
		for _, shards := range []int{2, 8} {
			if !bytes.Equal(ref, bodies[shards][i]) {
				t.Errorf("request %d: body at shards=%d differs from shards=1:\n%s\nvs\n%s",
					i, shards, bodies[shards][i], ref)
			}
		}
		var resp dcnflow.ServeResponse
		if err := json.Unmarshal(ref, &resp); err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(resp.Energy) != math.Float64bits(direct[i]) {
			t.Errorf("request %d: served energy %v is not bit-identical to direct %v", i, resp.Energy, direct[i])
		}
	}
}

// TestServeShardedBatch: /v1/batch through a multi-shard group keeps
// request order and matches the single-shard energies.
func TestServeShardedBatch(t *testing.T) {
	corpus := shardCorpus()
	var want []float64
	for _, shards := range []int{1, 4} {
		group := dcnflow.NewEngineGroup(shards, dcnflow.EngineOptions{})
		srv := httptest.NewServer(dcnflow.NewServeHandlerSharded(group, dcnflow.ServeOptions{}))
		client := &dcnflow.Client{BaseURL: srv.URL, HTTPClient: srv.Client()}
		results, err := client.SolveBatch(context.Background(), corpus)
		srv.Close()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(results) != len(corpus) {
			t.Fatalf("shards=%d: %d results for %d requests", shards, len(results), len(corpus))
		}
		for i, r := range results {
			if r.Error != "" {
				t.Fatalf("shards=%d item %d: %s", shards, i, r.Error)
			}
			if r.Scenario != corpus[i].Scenario.Name || r.Solver != corpus[i].Solver {
				t.Fatalf("shards=%d item %d out of order: %s/%s", shards, i, r.Scenario, r.Solver)
			}
		}
		if want == nil {
			for _, r := range results {
				want = append(want, r.Energy)
			}
			continue
		}
		for i, r := range results {
			if math.Float64bits(r.Energy) != math.Float64bits(want[i]) {
				t.Errorf("item %d: energy %v at shards=%d, want %v", i, r.Energy, shards, want[i])
			}
		}
	}
}

// TestEngineGroupRouting: shard assignment is content-derived and stable —
// the same request always lands on the same shard, and the corpus's
// distinct topologies actually spread across shards.
func TestEngineGroupRouting(t *testing.T) {
	group := dcnflow.NewEngineGroup(8, dcnflow.EngineOptions{})
	if group.Shards() != 8 {
		t.Fatalf("Shards() = %d, want 8", group.Shards())
	}
	corpus := shardCorpus()
	seen := map[int]bool{}
	for i, sr := range corpus {
		spec := sr.Scenario
		req := dcnflow.Request{Scenario: &spec, Solver: sr.Solver}
		shard := group.ShardFor(req)
		for rep := 0; rep < 3; rep++ {
			if again := group.ShardFor(req); again != shard {
				t.Fatalf("request %d: shard flapped %d -> %d", i, shard, again)
			}
		}
		seen[shard] = true
	}
	if len(seen) < 2 {
		t.Fatalf("corpus of %d distinct topologies all routed to one shard", len(corpus))
	}
	// Health on a sharded server reports the shard count.
	srv := httptest.NewServer(dcnflow.NewServeHandlerSharded(group, dcnflow.ServeOptions{}))
	defer srv.Close()
	client := &dcnflow.Client{BaseURL: srv.URL, HTTPClient: srv.Client()}
	h, err := client.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Shards != 8 {
		t.Fatalf("health shards = %d, want 8", h.Shards)
	}
}
