package dcnflow_test

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"dcnflow"
)

// TestGoldenDecisionLog pins the canonical JSONL format: the checked-in
// fixture loads, validates, and round-trips byte-identically.
func TestGoldenDecisionLog(t *testing.T) {
	data, err := os.ReadFile("testdata/golden_decision_log.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	log, err := dcnflow.LoadDecisionLog(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if log.Meta.Scheduler != "rolling" || len(log.Records) == 0 {
		t.Fatalf("unexpected golden log: meta=%+v records=%d", log.Meta, len(log.Records))
	}
	var buf bytes.Buffer
	if err := dcnflow.SaveDecisionLog(&buf, log); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("golden decision log does not round-trip byte-identically")
	}
}

// FuzzLoadDecisionLog asserts the decision-log loader is total: arbitrary
// input yields a validated log or an error wrapping ErrBadDecisionLog, never
// a panic, and every accepted log survives a save/load round trip with
// byte-identical serialization.
func FuzzLoadDecisionLog(f *testing.F) {
	seeds := []string{
		"",
		"{}",
		"not json",
		`{"scheduler":"rolling","workload":"diurnal","n":2,"fattree_k":4,"seed":1,"alpha":2,"iters":10}`,
		`{"scheduler":"greedy","workload":"diurnal","n":1,"fattree_k":4,"seed":1,"alpha":2,"iters":10}
{"seq":0,"time":0,"kind":"admit","flow":0,"reason":"marginal-cost","path":[1,2],"rate":1,"marginal_energy":2,"slack":3}`,
		`{"scheduler":"rolling","workload":"diurnal","n":1,"fattree_k":4,"seed":1,"alpha":2,"iters":10}
{"seq":0,"time":0,"epoch":1,"kind":"replan","flow":-1,"reason":"boundary","pending":1}
{"seq":1,"time":0,"epoch":1,"kind":"reject","flow":0,"reason":"over-capacity"}`,
		`{"scheduler":"rolling","workload":"diurnal","n":1,"fattree_k":4,"seed":1,"alpha":2,"iters":10}
{"seq":1,"time":0,"kind":"admit","flow":0}`,
		`{"scheduler":"bogus","workload":"diurnal","n":1,"fattree_k":4,"seed":1,"alpha":2,"iters":10}`,
	}
	if data, err := os.ReadFile("testdata/golden_decision_log.jsonl"); err == nil {
		seeds = append(seeds, string(data))
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		log, err := dcnflow.LoadDecisionLog(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := log.Validate(); err != nil {
			t.Fatalf("loader accepted a log that fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := dcnflow.SaveDecisionLog(&buf, log); err != nil {
			t.Fatalf("accepted log failed to save: %v", err)
		}
		log2, err := dcnflow.LoadDecisionLog(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("canonical serialization failed to load: %v", err)
		}
		var buf2 bytes.Buffer
		if err := dcnflow.SaveDecisionLog(&buf2, log2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("save/load/save is not byte-stable")
		}
	})
}
