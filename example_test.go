package dcnflow_test

import (
	"fmt"

	"dcnflow"
)

// ExampleSolveDCFS reproduces the paper's Example 1: two flows on a line
// network scheduled optimally by Most-Critical-First.
func ExampleSolveDCFS() {
	line, _ := dcnflow.Line(3, 1000)
	a, b, c := line.Hosts[0], line.Hosts[1], line.Hosts[2]
	flows, _ := dcnflow.NewFlowSet([]dcnflow.Flow{
		{Src: a, Dst: c, Release: 2, Deadline: 4, Size: 6},
		{Src: a, Dst: b, Release: 1, Deadline: 3, Size: 8},
	})
	paths, _ := dcnflow.ShortestPathRouting(line.Graph, flows)
	model := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1000} // f(x) = x^2

	res, _ := dcnflow.SolveDCFS(line.Graph, flows, paths, model)
	fmt.Printf("energy %.4f over %d critical rounds\n",
		res.Schedule.EnergyDynamic(model), len(res.Rounds))
	// Output: energy 90.5882 over 1 critical rounds
}

// ExampleSolveDCFSR jointly routes and schedules a small workload on a
// fat-tree and reports the approximation ratio against the fractional
// lower bound.
func ExampleSolveDCFSR() {
	ft, _ := dcnflow.FatTree(4, 1000)
	flows, _ := dcnflow.UniformWorkload(dcnflow.WorkloadConfig{
		N: 20, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: 42,
	})
	model := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1000}

	res, _ := dcnflow.SolveDCFSR(ft.Graph, flows, model, dcnflow.DCFSROptions{Seed: 1})
	fmt.Printf("deadlines guaranteed, ratio %.1fx of the lower bound\n",
		res.Schedule.EnergyTotal(model)/res.LowerBound)
	// Output: deadlines guaranteed, ratio 1.6x of the lower bound
}

// ExampleSigmaForRopt positions the energy-optimal link rate (Lemma 3) for
// a combined speed-scaling + power-down model.
func ExampleSigmaForRopt() {
	sigma := dcnflow.SigmaForRopt(1, 2, 2) // mu=1, alpha=2, Ropt=2
	model := dcnflow.PowerModel{Sigma: sigma, Mu: 1, Alpha: 2, C: 1000}
	fmt.Printf("sigma=%.0f, power rate at Ropt: %.0f\n", sigma, model.PowerRate(2))
	// Output: sigma=4, power rate at Ropt: 4
}
