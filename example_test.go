package dcnflow_test

import (
	"fmt"

	"dcnflow"
)

// ExampleSolveDCFS reproduces the paper's Example 1: two flows on a line
// network scheduled optimally by Most-Critical-First.
func ExampleSolveDCFS() {
	line, _ := dcnflow.Line(3, 1000)
	a, b, c := line.Hosts[0], line.Hosts[1], line.Hosts[2]
	flows, _ := dcnflow.NewFlowSet([]dcnflow.Flow{
		{Src: a, Dst: c, Release: 2, Deadline: 4, Size: 6},
		{Src: a, Dst: b, Release: 1, Deadline: 3, Size: 8},
	})
	paths, _ := dcnflow.ShortestPathRouting(line.Graph, flows)
	model := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1000} // f(x) = x^2

	res, _ := dcnflow.SolveDCFS(line.Graph, flows, paths, model)
	fmt.Printf("energy %.4f over %d critical rounds\n",
		res.Schedule.EnergyDynamic(model), len(res.Rounds))
	// Output: energy 90.5882 over 1 critical rounds
}

// ExampleSolveDCFSR jointly routes and schedules a small workload on a
// fat-tree and reports the approximation ratio against the fractional
// lower bound.
func ExampleSolveDCFSR() {
	ft, _ := dcnflow.FatTree(4, 1000)
	flows, _ := dcnflow.UniformWorkload(dcnflow.WorkloadConfig{
		N: 20, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: 42,
	})
	model := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1000}

	res, _ := dcnflow.SolveDCFSR(ft.Graph, flows, model, dcnflow.DCFSROptions{Seed: 1})
	fmt.Printf("deadlines guaranteed, ratio %.1fx of the lower bound\n",
		res.Schedule.EnergyTotal(model)/res.LowerBound)
	// Output: deadlines guaranteed, ratio 1.6x of the lower bound
}

// ExampleLowerBound computes the fractional relaxation bound on its own —
// the denominator every evaluation curve of the paper's Fig. 2 is
// normalised by.
func ExampleLowerBound() {
	ft, _ := dcnflow.FatTree(4, 1000)
	flows, _ := dcnflow.UniformWorkload(dcnflow.WorkloadConfig{
		N: 20, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: 42,
	})
	model := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1000}

	lb, _ := dcnflow.LowerBound(ft.Graph, flows, model, dcnflow.DCFSROptions{})
	res, _ := dcnflow.SolveDCFSR(ft.Graph, flows, model, dcnflow.DCFSROptions{Seed: 1})
	fmt.Printf("no schedule can beat %.1f; Random-Schedule achieves %.1fx of it\n",
		lb, res.Schedule.EnergyTotal(model)/lb)
	// Output: no schedule can beat 510.4; Random-Schedule achieves 1.6x of it
}

// ExampleSolveOnlineRolling runs the rolling-horizon online scheduler on a
// diurnal arrival pattern: flows are revealed at release time, every epoch
// boundary re-runs the relaxation over the remaining horizon with frozen
// commitments, and the simulator independently validates the outcome.
func ExampleSolveOnlineRolling() {
	ft, _ := dcnflow.FatTree(4, 1000)
	flows, _ := dcnflow.DiurnalWorkload(dcnflow.DiurnalConfig{
		N: 30, T0: 0, T1: 100, PeakFactor: 5,
		SizeMean: 8, SizeStddev: 2, Hosts: ft.Hosts, Seed: 7,
	})
	model := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1000}

	res, replay, _ := dcnflow.SolveOnlineRolling(ft.Graph, flows, model, dcnflow.RollingOptions{
		Policy: dcnflow.ArrivalCount{N: 1}, // re-optimize at every arrival
		DCFSR:  dcnflow.DCFSROptions{Seed: 1, WarmStart: true},
	})
	fmt.Printf("admitted %d/%d flows over %d epochs\n",
		replay.Admitted, flows.Len(), res.Stats.Epochs)
	fmt.Printf("deadline violations: %d, capacity violations: %d\n",
		replay.DeadlineViolations, replay.CapacityViolations)
	// Output:
	// admitted 30/30 flows over 30 epochs
	// deadline violations: 0, capacity violations: 0
}

// ExampleSigmaForRopt positions the energy-optimal link rate (Lemma 3) for
// a combined speed-scaling + power-down model.
func ExampleSigmaForRopt() {
	sigma := dcnflow.SigmaForRopt(1, 2, 2) // mu=1, alpha=2, Ropt=2
	model := dcnflow.PowerModel{Sigma: sigma, Mu: 1, Alpha: 2, C: 1000}
	fmt.Printf("sigma=%.0f, power rate at Ropt: %.0f\n", sigma, model.PowerRate(2))
	// Output: sigma=4, power rate at Ropt: 4
}
