package dcnflow_test

import (
	"math"
	"testing"

	"dcnflow"
)

// TestFacadeEndToEnd exercises the full public API path a downstream user
// would follow: build a topology, draw a workload, solve DCFSR, compare
// against SP+MCF, and cross-check with the simulator.
func TestFacadeEndToEnd(t *testing.T) {
	ft, err := dcnflow.FatTree(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := dcnflow.UniformWorkload(dcnflow.WorkloadConfig{
		N: 20, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	model := dcnflow.PowerModel{
		Sigma: dcnflow.SigmaForRopt(1, 2, 1),
		Mu:    1, Alpha: 2, C: 1e9,
	}

	rs, err := dcnflow.SolveDCFSR(ft.Graph, flows, model, dcnflow.DCFSROptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := dcnflow.SPMCF(ft.Graph, flows, model)
	if err != nil {
		t.Fatal(err)
	}
	rsEnergy := rs.Schedule.EnergyTotal(model)
	spEnergy := sp.Schedule.EnergyTotal(model)
	if rsEnergy < rs.LowerBound*(1-1e-6) {
		t.Fatalf("RS energy %v below LB %v", rsEnergy, rs.LowerBound)
	}
	if spEnergy <= 0 {
		t.Fatal("SP+MCF energy not positive")
	}

	simRes, err := dcnflow.Simulate(ft.Graph, flows, rs.Schedule, model, dcnflow.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if simRes.DeadlinesMissed != 0 {
		t.Fatalf("simulator saw %d missed deadlines", simRes.DeadlinesMissed)
	}
	if math.Abs(simRes.TotalEnergy-rsEnergy)/rsEnergy > 1e-6 {
		t.Fatalf("sim energy %v != analytic %v", simRes.TotalEnergy, rsEnergy)
	}

	report, err := dcnflow.VerifyEDFTimeSharing(ft.Graph, flows, rs.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("EDF time-sharing violated: %v", report.Violations)
	}
}

func TestFacadeDCFSWithExplicitRouting(t *testing.T) {
	line, err := dcnflow.Line(3, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := dcnflow.NewFlowSet([]dcnflow.Flow{
		{Src: line.Hosts[0], Dst: line.Hosts[2], Release: 2, Deadline: 4, Size: 6},
		{Src: line.Hosts[0], Dst: line.Hosts[1], Release: 1, Deadline: 3, Size: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := dcnflow.ShortestPathRouting(line.Graph, flows)
	if err != nil {
		t.Fatal(err)
	}
	model := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1e9}
	res, err := dcnflow.SolveDCFS(line.Graph, flows, paths, model)
	if err != nil {
		t.Fatal(err)
	}
	want := 12*(8+6*math.Sqrt2)/3/math.Sqrt2 + 8*(8+6*math.Sqrt2)/3
	if got := res.Schedule.EnergyDynamic(model); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("Example 1 energy = %v, want %v", got, want)
	}
}

func TestFacadeLowerBoundAndAlwaysOn(t *testing.T) {
	ft, err := dcnflow.FatTree(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := dcnflow.UniformWorkload(dcnflow.WorkloadConfig{
		N: 10, T0: 1, T1: 100, SizeMean: 5, SizeStddev: 1,
		Hosts: ft.Hosts, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	model := dcnflow.PowerModel{Sigma: 1, Mu: 1, Alpha: 2, C: 100}
	lb, err := dcnflow.LowerBound(ft.Graph, flows, model, dcnflow.DCFSROptions{})
	if err != nil {
		t.Fatal(err)
	}
	ao, err := dcnflow.AlwaysOnFullRate(ft.Graph, flows, model)
	if err != nil {
		t.Fatal(err)
	}
	if ao.Energy <= lb {
		t.Fatalf("always-on energy %v should exceed the lower bound %v", ao.Energy, lb)
	}
}

func TestFacadeWorkloadHelpers(t *testing.T) {
	ft, err := dcnflow.FatTree(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := dcnflow.PartitionAggregateWorkload(ft.Hosts[0], ft.Hosts[1:5], 0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Len() != 4 {
		t.Fatalf("partition-aggregate flows = %d, want 4", pa.Len())
	}
	sh, err := dcnflow.ShuffleWorkload(ft.Hosts[:3], 0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Len() != 6 {
		t.Fatalf("shuffle flows = %d, want 6", sh.Len())
	}
}
