// Load benchmarks for the serve API: each BenchmarkServeLoad sub-benchmark
// replays one examples/servebench spec — an arrival process (poisson or
// burst) against one server configuration (open or admission-controlled) —
// through a real `dcnflow serve` subprocess, and reports the open-loop
// latency percentiles, throughput and error rate of the run. `make
// bench-serve` snapshots the four configurations into BENCH_serve.json.
package dcnflow_test

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dcnflow/internal/servebench"
)

// serveBenchBin builds the dcnflow binary once per test process and shares
// it across every sub-benchmark (the build costs seconds; the server under
// test must be a real binary so SIGTERM reaches it directly).
var serveBenchBin struct {
	once sync.Once
	path string
	err  error
}

func serveBenchBinary(b *testing.B) string {
	b.Helper()
	serveBenchBin.once.Do(func() {
		dir, err := os.MkdirTemp("", "dcnflow-servebench-")
		if err != nil {
			serveBenchBin.err = err
			return
		}
		serveBenchBin.path, serveBenchBin.err = servebench.BuildBinary(context.Background(), dir)
	})
	if serveBenchBin.err != nil {
		b.Fatal(serveBenchBin.err)
	}
	return serveBenchBin.path
}

// benchServeLoad runs one spec end to end per iteration: fresh server
// subprocess, full schedule, graceful SIGTERM stop. The reported custom
// metrics come from the last iteration's report; run with -benchtime 1x
// (the `make bench-serve` default) — one iteration is a full load run, so
// ns/op is the wall time of the whole run.
func benchServeLoad(b *testing.B, specPath string) {
	b.Helper()
	spec, err := servebench.LoadFile(specPath)
	if err != nil {
		b.Fatal(err)
	}
	bin := serveBenchBinary(b)
	ctx := context.Background()

	var report *servebench.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, err := servebench.StartServer(ctx, bin, spec)
		if err != nil {
			b.Fatal(err)
		}
		report, err = servebench.Run(ctx, srv.BaseURL, spec)
		if err != nil {
			srv.Kill()
			b.Fatal(err)
		}
		if err := srv.Stop(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(report.Total.P50MS, "p50_ms")
	b.ReportMetric(report.Total.P95MS, "p95_ms")
	b.ReportMetric(report.Total.P99MS, "p99_ms")
	b.ReportMetric(report.ThroughputRPS, "rps")
	b.ReportMetric(report.ErrorRate, "err_rate")
}

// BenchmarkServeLoad is the serve-bench matrix: {poisson, burst} arrivals ×
// {open, admission-controlled} servers, one sub-benchmark per
// examples/servebench spec. BENCH_serve.json keys these as
// BenchmarkServeLoad/<arrival>-<admission>.
func BenchmarkServeLoad(b *testing.B) {
	for _, name := range []string{
		"poisson-open",
		"poisson-admit",
		"burst-open",
		"burst-admit",
	} {
		b.Run(name, func(b *testing.B) {
			benchServeLoad(b, filepath.Join("examples", "servebench", name+".json"))
		})
	}
}
