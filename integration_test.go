package dcnflow_test

import (
	"math"
	"testing"

	"dcnflow"
)

// TestIntegrationFatTreePipeline runs the full pipeline (topology ->
// workload -> RS -> baselines -> simulator -> breakdown -> packet level ->
// EDF check) on one instance and cross-validates every measurement against
// the others.
func TestIntegrationFatTreePipeline(t *testing.T) {
	ft, err := dcnflow.FatTree(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := dcnflow.UniformWorkload(dcnflow.WorkloadConfig{
		N: 30, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	model := dcnflow.PowerModel{
		Sigma: dcnflow.SigmaForRopt(1, 2, 3*flows.MeanDensity()),
		Mu:    1, Alpha: 2, C: 1e9,
	}

	rs, err := dcnflow.SolveDCFSR(ft.Graph, flows, model, dcnflow.DCFSROptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	analytic := rs.Schedule.EnergyTotal(model)

	// 1. Simulator agrees with analytic accounting.
	simRes, err := dcnflow.Simulate(ft.Graph, flows, rs.Schedule, model, dcnflow.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(simRes.TotalEnergy-analytic)/analytic > 1e-6 {
		t.Fatalf("sim %v vs analytic %v", simRes.TotalEnergy, analytic)
	}
	if simRes.DeadlinesMissed != 0 {
		t.Fatalf("missed %d deadlines", simRes.DeadlinesMissed)
	}

	// 2. Breakdown tiers sum to the analytic total and cover the three
	// fat-tree tiers.
	breakdown, err := rs.Schedule.Breakdown(ft.Graph, model)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(breakdown.Total()-analytic)/analytic > 1e-9 {
		t.Fatalf("breakdown %v vs analytic %v", breakdown.Total(), analytic)
	}
	tiers := map[string]bool{}
	for _, tier := range breakdown.Tiers {
		tiers[tier.Tier] = true
	}
	for _, want := range []string{"edge-host", "agg-edge", "agg-core"} {
		if !tiers[want] {
			t.Fatalf("missing tier %q in %v", want, tiers)
		}
	}

	// 3. The per-link EDF discipline holds (Theorem 4) and the
	// packet-level simulation delivers everything.
	report, err := dcnflow.VerifyEDFTimeSharing(ft.Graph, flows, rs.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("EDF violations: %v", report.Violations)
	}
	pl, err := dcnflow.SimulatePacketLevel(ft.Graph, flows, rs.Schedule, dcnflow.PacketLevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for fid, c := range pl.Completion {
		if math.IsInf(c, 1) {
			t.Fatalf("flow %d undelivered at packet level", fid)
		}
	}

	// 4. Ordering sanity across schemes: LB <= RS; baselines feasible.
	if analytic < rs.LowerBound*(1-1e-9) {
		t.Fatalf("RS %v below LB %v", analytic, rs.LowerBound)
	}
	sp, err := dcnflow.SPMCF(ft.Graph, flows, model)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Schedule.Verify(ft.Graph, flows, model, dcnflow.VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	ao, err := dcnflow.AlwaysOnFullRate(ft.Graph, flows, model)
	if err != nil {
		t.Fatal(err)
	}
	if ao.Energy <= analytic {
		t.Fatalf("always-on %v not worse than RS %v", ao.Energy, analytic)
	}

	// 5. Schedule JSON round-trip preserves energy.
	data, err := rs.Schedule.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var restored dcnflow.Schedule
	if err := restored.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if math.Abs(restored.EnergyTotal(model)-analytic)/analytic > 1e-12 {
		t.Fatal("JSON round trip changed energy")
	}
}
