# Convenience targets for the dcnflow repository. The CI workflow runs the
# same commands; see .github/workflows/ci.yml.

GO ?= go

.PHONY: build test vet fmt bench bench-smoke examples doccheck

build:
	$(GO) build ./...

# examples builds every example program; the root test suite additionally
# runs them (TestExamplesBuildAndRun).
examples:
	$(GO) build ./examples/...

# doccheck fails when an exported symbol of the public facade (root
# package) is missing a doc comment.
doccheck:
	$(GO) run ./cmd/doccheck

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# bench refreshes BENCH_solver.json from the component micro-benchmarks.
bench:
	$(GO) run ./cmd/benchjson

# bench-smoke runs every benchmark once — a compile-and-run sanity pass.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
