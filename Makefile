# Convenience targets for the dcnflow repository. The CI workflow runs the
# same commands; see .github/workflows/ci.yml.

GO ?= go

.PHONY: build test test-race-online vet fmt bench bench-graph bench-serve bench-smoke bench-graph-smoke bench-serve-smoke bench-online-smoke examples scenarios sweep-smoke serve-smoke decisions-smoke doccheck profile

build:
	$(GO) build ./...

# examples builds every example program; the root test suite additionally
# runs them (TestExamplesBuildAndRun).
examples:
	$(GO) build ./examples/...

# scenarios solves every JSON scenario spec under examples/scenarios/
# through a representative registered-solver set (exact is excluded: the
# specs are larger than its enumeration bound).
scenarios:
	@for f in examples/scenarios/*.json; do \
		echo "== $$f"; \
		$(GO) run ./cmd/dcnflow run $$f -solver dcfsr,sp-mcf,greedy-online,rolling-online || exit 1; \
	done

# sweep-smoke runs the tiny all-solver sweep grid through the CLI — every
# registered solver family on a 32-cell grid, JSONL discarded, aggregate
# printed. CI runs the same command.
sweep-smoke:
	$(GO) run ./cmd/dcnflow sweep examples/sweeps/smoke.json -workers 4

# serve-smoke boots `dcnflow serve` as a real subprocess, fires a
# 3-request batch through the Go client, asserts every energy is
# bit-identical to the engine solve `dcnflow run` prints, and requires a
# graceful SIGTERM shutdown. CI runs the same command.
serve-smoke:
	$(GO) run ./cmd/servesmoke

# decisions-smoke exercises the decision-tracing subsystem end to end:
# record a small rolling run's decision log, counterfactually replay its
# top-2 alternatives requiring nonzero regret rows, then run the O2
# decision-regret experiment requiring at least one demonstrated decision
# where rolling beats the forced greedy path on weighted fitness. CI runs
# the same commands.
decisions-smoke:
	$(GO) run ./cmd/dcnflow decisions -mode record -n 24 -seed 5 -iters 25 -out /tmp/dcnflow-decisions.jsonl
	$(GO) run ./cmd/dcnflow decisions -mode replay -file /tmp/dcnflow-decisions.jsonl -topk 2 -max-decisions 3 -require-regret
	$(GO) run ./cmd/dcnflow decisions -mode score -n 24 -seed 5 -iters 25 -max-decisions 3 -require-win

# doccheck fails when an exported symbol of the public facade (root
# package) is missing a doc comment, or when a registered solver name is
# absent from README.md, DESIGN.md, `dcnflow run -h` or `dcnflow sweep -h`.
doccheck:
	$(GO) run ./cmd/doccheck

# profile runs the smoke sweep under the new pprof hooks so perf work can
# start from a flame graph: `make profile` then
# `go tool pprof /tmp/dcnflow-cpu.pprof`. The same -cpuprofile/-memprofile
# flags work on `dcnflow run` and arbitrary sweeps.
profile:
	$(GO) run ./cmd/dcnflow sweep examples/sweeps/smoke.json -workers 4 -cpuprofile /tmp/dcnflow-cpu.pprof -memprofile /tmp/dcnflow-mem.pprof
	@echo "profiles: /tmp/dcnflow-cpu.pprof /tmp/dcnflow-mem.pprof"

test:
	$(GO) test ./...

# test-race-online runs the packages with cross-goroutine state (the online
# schedulers, the decision tracing they emit, the concurrent relaxation
# fan-out they drive, the solver pools, the compiled-graph scratch pools,
# the intra-solve parallel oracle, the incremental delta-solve suites,
# and the sweep worker pool) under the race detector, plus the root-package
# conformance corpus, sweep determinism tests, the intra-solve worker
# determinism suite and the shared-Engine concurrency tests (cache LRU,
# pooled scratch, batch pool, serve handler — including the sharded-serve
# determinism, drain-under-load, token-bucket admission and client-retry
# suites); CI runs the same job.
test-race-online:
	$(GO) test -race ./internal/online/... ./internal/decision/... ./internal/core/... ./internal/mcfsolve/... ./internal/sweep/... ./internal/graph/...
	$(GO) test -race -run 'TestConformance|TestSweep|TestEngine|TestServe|TestIntraSolve|TestAdmission|TestClient|TestPriorityRank|TestParseRetryAfter' .
	$(GO) test -race -run 'Delta' ./internal/online/ ./internal/core/
	$(GO) test -race -run 'Renumber|Fingerprint' ./internal/core/ ./internal/graph/

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# bench refreshes BENCH_solver.json from the component micro-benchmarks.
bench:
	$(GO) run ./cmd/benchjson

# bench-graph refreshes BENCH_graph.json from the large-topology scale
# suite (10k-node SSSP heap vs dial, intra-solve parallel Frank–Wolfe).
bench-graph:
	$(GO) run ./cmd/benchjson -suite graph -benchtime 10x

# bench-serve refreshes BENCH_serve.json from the serve-API load matrix:
# {poisson, burst} arrivals x {open, admission-controlled} servers, each a
# full open-loop run against a real `dcnflow serve` subprocess (benchjson
# defaults the serve suite to -benchtime 1x — one iteration is one run).
bench-serve:
	$(GO) run ./cmd/benchjson -suite serve

# bench-smoke runs every benchmark once — a compile-and-run sanity pass.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-graph-smoke runs just the large-topology benches once (including the
# 100k-node jellyfish fixture), so the big fixtures cannot silently rot
# between bench-graph refreshes, then validates that the committed
# BENCH_graph.json still carries the 100k-node entries.
bench-graph-smoke:
	$(GO) test -run '^$$' -bench 'Large' -benchtime 1x .
	$(GO) run ./cmd/benchjson -check BENCH_graph.json -bench 'jellyfish100k'

# bench-online-smoke is the CI-sized delta-solve pass: the delta-vs-full
# equivalence and determinism suites, one iteration of the smallest
# BenchmarkOnlineDelta fleet, and a validation that the committed
# BENCH_solver.json still carries the delta entries.
bench-online-smoke:
	$(GO) test -run 'Delta' ./internal/online/ ./internal/core/
	$(GO) test -run '^$$' -bench 'BenchmarkOnlineDelta/smoke' -benchtime 1x .
	$(GO) run ./cmd/benchjson -check BENCH_solver.json -bench 'BenchmarkOnlineDelta'

# bench-serve-smoke is the CI-sized serve-bench pass: replay the small
# smoke spec (2 clients, open admission) against a live serve subprocess
# with zero tolerated failures, then validate the committed
# BENCH_serve.json still covers the full arrival x admission matrix.
bench-serve-smoke:
	$(GO) run ./cmd/servebench -spec examples/servebench/smoke.json -assert-no-failures
	$(GO) run ./cmd/servebench -check BENCH_serve.json
