package dcnflow

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// retryScenario is a minimal valid scenario for request bodies (the flaky
// test server never actually solves it).
func retryScenario() ScenarioSpec {
	return ScenarioSpec{
		Name:     "retry-test",
		Topology: TopologySpec{Kind: "line", K: 3, Capacity: 100},
		Workload: WorkloadSpec{Kind: "shuffle", Hosts: 2, Release: 0, Deadline: 6, Size: 2},
		Model:    ModelSpec{Mu: 1, Alpha: 2, C: 100},
	}
}

// flakyServer answers 429/503 (with an optional Retry-After) for the first
// `fail` requests, then a normal solve response.
func flakyServer(t *testing.T, fail int, status int, retryAfter string) (*httptest.Server, *int) {
	t.Helper()
	attempts := new(int)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		*attempts++
		if *attempts <= fail {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(map[string]string{"error": "busy"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(ServeResponse{Scenario: "s", Solver: "greedy"})
	}))
	t.Cleanup(srv.Close)
	return srv, attempts
}

// fakeSleeper records requested backoff delays instead of sleeping.
type fakeSleeper struct{ delays []time.Duration }

func (f *fakeSleeper) sleep(_ context.Context, d time.Duration) error {
	f.delays = append(f.delays, d)
	return nil
}

func TestClientRetryHonorsRetryAfter(t *testing.T) {
	srv, attempts := flakyServer(t, 2, http.StatusTooManyRequests, "2")
	fs := &fakeSleeper{}
	c := &Client{
		BaseURL: srv.URL,
		Retry:   &RetryPolicy{MaxRetries: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 5 * time.Second},
		sleep:   fs.sleep,
		jitter:  func() float64 { return 0.5 },
	}
	resp, err := c.Solve(context.Background(), ServeRequest{Scenario: retryScenario(), Solver: "greedy"})
	if err != nil {
		t.Fatalf("Solve after retries: %v", err)
	}
	if resp == nil {
		t.Fatal("nil response")
	}
	if *attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (2 rejections + success)", *attempts)
	}
	if len(fs.delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(fs.delays))
	}
	for i, d := range fs.delays {
		if d != 2*time.Second {
			t.Errorf("delay[%d] = %v, want 2s (the Retry-After hint)", i, d)
		}
	}
}

func TestClientRetryExponentialBackoffWithJitter(t *testing.T) {
	srv, attempts := flakyServer(t, 3, http.StatusServiceUnavailable, "")
	fs := &fakeSleeper{}
	c := &Client{
		BaseURL: srv.URL,
		Retry:   &RetryPolicy{MaxRetries: 3, BaseDelay: 100 * time.Millisecond, MaxDelay: 10 * time.Second},
		sleep:   fs.sleep,
		jitter:  func() float64 { return 0.5 }, // midpoint of [d/2, d)
	}
	if _, err := c.Solve(context.Background(), ServeRequest{Scenario: retryScenario(), Solver: "greedy"}); err != nil {
		t.Fatalf("Solve after retries: %v", err)
	}
	if *attempts != 4 {
		t.Fatalf("attempts = %d, want 4", *attempts)
	}
	// With jitter fixed at 0.5, delay = d/2 + 0.5*d/2 = 0.75*d for
	// d = 100ms, 200ms, 400ms.
	want := []time.Duration{75 * time.Millisecond, 150 * time.Millisecond, 300 * time.Millisecond}
	if len(fs.delays) != len(want) {
		t.Fatalf("slept %d times, want %d", len(fs.delays), len(want))
	}
	for i, d := range fs.delays {
		if d != want[i] {
			t.Errorf("delay[%d] = %v, want %v", i, d, want[i])
		}
	}
}

func TestClientRetryBudgetExhausted(t *testing.T) {
	srv, attempts := flakyServer(t, 100, http.StatusTooManyRequests, "1")
	fs := &fakeSleeper{}
	c := &Client{
		BaseURL: srv.URL,
		Retry:   &RetryPolicy{MaxRetries: 2},
		sleep:   fs.sleep,
	}
	_, err := c.Solve(context.Background(), ServeRequest{Scenario: retryScenario(), Solver: "greedy"})
	if err == nil {
		t.Fatal("want error after exhausting retries")
	}
	var se *ServeError
	if !errors.As(err, &se) {
		t.Fatalf("error %T is not *ServeError: %v", err, err)
	}
	if se.Status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", se.Status)
	}
	if se.RetryAfter != time.Second {
		t.Fatalf("RetryAfter = %v, want 1s", se.RetryAfter)
	}
	if *attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (initial + 2 retries)", *attempts)
	}
}

func TestClientNoRetryOnPermanentError(t *testing.T) {
	srv, attempts := flakyServer(t, 100, http.StatusBadRequest, "")
	fs := &fakeSleeper{}
	c := &Client{BaseURL: srv.URL, Retry: &RetryPolicy{}, sleep: fs.sleep}
	_, err := c.Solve(context.Background(), ServeRequest{Scenario: retryScenario(), Solver: "greedy"})
	if err == nil {
		t.Fatal("want error")
	}
	if *attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (400 must not retry)", *attempts)
	}
	if len(fs.delays) != 0 {
		t.Fatalf("slept %d times, want 0", len(fs.delays))
	}
	if !strings.Contains(err.Error(), "server status 400") {
		t.Fatalf("error %q does not name the status", err)
	}
}

func TestClientNoRetryWithoutPolicy(t *testing.T) {
	srv, attempts := flakyServer(t, 100, http.StatusTooManyRequests, "1")
	c := &Client{BaseURL: srv.URL}
	_, err := c.Solve(context.Background(), ServeRequest{Scenario: retryScenario(), Solver: "greedy"})
	if err == nil {
		t.Fatal("want error")
	}
	if *attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no Retry policy)", *attempts)
	}
}

func TestClientRetryCancelledWhileWaiting(t *testing.T) {
	srv, _ := flakyServer(t, 100, http.StatusServiceUnavailable, "")
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{
		BaseURL: srv.URL,
		Retry:   &RetryPolicy{MaxRetries: 5, BaseDelay: time.Hour},
		sleep: func(ctx context.Context, d time.Duration) error {
			cancel()
			return ctx.Err()
		},
	}
	_, err := c.Solve(ctx, ServeRequest{Scenario: retryScenario(), Solver: "greedy"})
	if err == nil {
		t.Fatal("want error when context cancels the backoff wait")
	}
	if !strings.Contains(err.Error(), "retry wait") {
		t.Fatalf("error %q does not mention the retry wait", err)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"0", 0},
		{"1", time.Second},
		{" 7 ", 7 * time.Second},
		{"-3", 0},
		{"soon", 0},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0},
	}
	for _, tc := range cases {
		h := http.Header{}
		if tc.in != "" {
			h.Set("Retry-After", tc.in)
		}
		if got := parseRetryAfter(h); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
