// Benchmarks regenerating every artifact of the paper's evaluation — one
// benchmark per table/figure (see the DESIGN.md per-experiment index) plus
// component micro-benchmarks. The figure benches run a reduced but
// shape-preserving scale (fewer runs/solver iterations than the paper's 10
// runs) so the whole suite stays in minutes on a laptop; `cmd/dcnflow fig2
// -runs 10` reproduces the full-scale figure. Reported custom metrics are
// the ratio series of the paper's Fig. 2 (energy normalised by the
// fractional lower bound).
package dcnflow_test

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"dcnflow"
	"dcnflow/internal/experiments"
	"dcnflow/internal/graph"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/yds"
)

// BenchmarkExampleOne regenerates E1: the Fig. 1 / Example 1 closed-form
// check (Most-Critical-First vs analytic optimum).
func BenchmarkExampleOne(b *testing.B) {
	var maxErr float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunExample1()
		if err != nil {
			b.Fatal(err)
		}
		maxErr = res.MaxRelError
	}
	b.ReportMetric(maxErr, "max-rel-err")
}

// benchFig2 runs one Fig. 2 panel at bench scale and reports the ratio
// series as custom metrics.
func benchFig2(b *testing.B, alpha float64) {
	b.Helper()
	cfg := experiments.Fig2Config{
		Alpha:       alpha,
		FlowCounts:  []int{40, 120, 200},
		Runs:        1,
		FatTreeK:    8,
		Seed:        1,
		SolverIters: 30,
	}
	var last *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, p := range last.Points {
		b.ReportMetric(p.RS, fmt.Sprintf("RS/LB(n=%d)", p.N))
		b.ReportMetric(p.SPMCF, fmt.Sprintf("SP/LB(n=%d)", p.N))
	}
}

// BenchmarkFig2Alpha2 regenerates F2, the x^2 panel of Fig. 2: LB, RS/LB
// and SP+MCF/LB on the 80-switch fat-tree, flows 40..200.
func BenchmarkFig2Alpha2(b *testing.B) { benchFig2(b, 2) }

// BenchmarkFig2Alpha4 regenerates F2, the x^4 panel of Fig. 2.
func BenchmarkFig2Alpha4(b *testing.B) { benchFig2(b, 4) }

// BenchmarkHardnessGadget regenerates T2/T3: the Theorem 2 3-partition
// gadget (RS vs the provable optimum) and the Theorem 3 constant.
func BenchmarkHardnessGadget(b *testing.B) {
	var last *experiments.HardnessResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHardness(experiments.HardnessConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.RSRatio, "RS/opt")
	b.ReportMetric(last.Theorem3Gamma, "gamma(alpha)")
}

// BenchmarkAblationLambda regenerates A1: RS/LB as the interval
// granularity (lambda) grows.
func BenchmarkAblationLambda(b *testing.B) {
	var last *experiments.LambdaResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationLambda(
			experiments.AblateConfig{N: 30, Runs: 2, Seed: 1, SolverIters: 25},
			[]float64{20, 5, 1},
		)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, p := range last.Points {
		b.ReportMetric(p.Ratio, fmt.Sprintf("RS/LB(q=%g)", p.Quantum))
	}
}

// BenchmarkAblationRounding regenerates A2: feasibility rate vs the
// re-rounding budget on a capacity-tight instance.
func BenchmarkAblationRounding(b *testing.B) {
	var last *experiments.RoundingResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationRounding(
			experiments.AblateConfig{Runs: 10, Seed: 1},
			[]int{1, 5, 50},
		)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, p := range last.Points {
		b.ReportMetric(p.FeasibleRate, fmt.Sprintf("feasible(att=%d)", p.Attempts))
	}
}

// BenchmarkAblationSurrogate regenerates A3: dynamic vs envelope
// relaxation cost under idle power.
func BenchmarkAblationSurrogate(b *testing.B) {
	var last *experiments.SurrogateResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationSurrogate(
			experiments.AblateConfig{N: 30, Runs: 2, Seed: 1, SolverIters: 25},
		)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, p := range last.Points {
		b.ReportMetric(p.ActiveLinks, "links("+p.Cost[:3]+")")
	}
}

// --- Component micro-benchmarks ---------------------------------------------

// BenchmarkMostCriticalFirst measures the optimal DCFS solver on a
// 100-flow fat-tree instance with shortest-path routing.
func BenchmarkMostCriticalFirst(b *testing.B) {
	ft, err := dcnflow.FatTree(8, 1e12)
	if err != nil {
		b.Fatal(err)
	}
	flows, err := dcnflow.UniformWorkload(dcnflow.WorkloadConfig{
		N: 100, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	model := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1e12}
	paths, err := dcnflow.ShortestPathRouting(ft.Graph, flows)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dcnflow.SolveDCFS(ft.Graph, flows, paths, model); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandomSchedule measures the full DCFSR pipeline on a 40-flow
// k=4 fat-tree instance.
func BenchmarkRandomSchedule(b *testing.B) {
	ft, err := dcnflow.FatTree(4, 1e12)
	if err != nil {
		b.Fatal(err)
	}
	flows, err := dcnflow.UniformWorkload(dcnflow.WorkloadConfig{
		N: 40, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	model := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1e12}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dcnflow.SolveDCFSR(ft.Graph, flows, model, dcnflow.DCFSROptions{
			Seed: 1, Solver: dcnflow.SolverOptions{MaxIters: 25},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrankWolfe measures one F-MCF solve (30 commodities, k=8
// fat-tree).
func BenchmarkFrankWolfe(b *testing.B) {
	ft, err := dcnflow.FatTree(8, 1e12)
	if err != nil {
		b.Fatal(err)
	}
	comms := make([]mcfsolve.Commodity, 30)
	for i := range comms {
		comms[i] = mcfsolve.Commodity{
			Src:    ft.Hosts[(i*7)%len(ft.Hosts)],
			Dst:    ft.Hosts[(i*13+5)%len(ft.Hosts)],
			Demand: 1 + float64(i%5),
		}
	}
	model := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1e12}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcfsolve.Solve(ft.Graph, comms, model, mcfsolve.Options{MaxIters: 30}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDijkstraFatTree8 measures the shortest-path oracle on the
// paper's evaluation topology.
func BenchmarkDijkstraFatTree8(b *testing.B) {
	ft, err := dcnflow.FatTree(8, 1e12)
	if err != nil {
		b.Fatal(err)
	}
	src, dst := ft.Hosts[0], ft.Hosts[len(ft.Hosts)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ft.Graph.ShortestPath(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkYDS measures the single-processor speed-scaling substrate on
// 100 jobs.
func BenchmarkYDS(b *testing.B) {
	jobs := make([]yds.Job, 100)
	for i := range jobs {
		r := float64(i%37) * 2.3
		jobs[i] = yds.Job{ID: i, Release: r, Deadline: r + 5 + float64(i%11), Work: 1 + float64(i%7)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := yds.Solve(jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactSmall measures the brute-force DCFSR verifier on a
// 4-flow, 3-parallel-link instance (81 assignments).
func BenchmarkExactSmall(b *testing.B) {
	top, src, dst, err := dcnflow.ParallelLinks(3, 1e12)
	if err != nil {
		b.Fatal(err)
	}
	flows, err := dcnflow.NewFlowSet([]dcnflow.Flow{
		{Src: src, Dst: dst, Release: 0, Deadline: 1, Size: 1},
		{Src: src, Dst: dst, Release: 0, Deadline: 2, Size: 2},
		{Src: src, Dst: dst, Release: 1, Deadline: 3, Size: 1.5},
		{Src: src, Dst: dst, Release: 0.5, Deadline: 2.5, Size: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	m := dcnflow.PowerModel{Sigma: 1, Mu: 1, Alpha: 2, C: 1e12}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dcnflow.SolveDCFSRExact(top.Graph, flows, m, dcnflow.ExactOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineGreedy measures the online admission pipeline on 100
// flows.
func BenchmarkOnlineGreedy(b *testing.B) {
	ft, err := dcnflow.FatTree(8, 1e12)
	if err != nil {
		b.Fatal(err)
	}
	flows, err := dcnflow.UniformWorkload(dcnflow.WorkloadConfig{
		N: 100, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	m := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1e12}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dcnflow.SolveOnline(ft.Graph, flows, m, dcnflow.OnlineOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineRolling measures the rolling-horizon online scheduler on
// the slowly-varying diurnal chain — the workload DESIGN.md predicts warm
// starts pay on. The recorder=off/recorder=on sub-benchmarks bound the
// decision-tracing overhead (nil recorder vs an attached DecisionMemory);
// recorder=off additionally reports fw-iters-warm / fw-iters-cold, the total
// Frank–Wolfe iterations of warm-started vs cold-started epoch re-solves,
// tracked in BENCH_solver.json by `make bench`.
func BenchmarkOnlineRolling(b *testing.B) {
	ft, err := dcnflow.FatTree(4, 1e12)
	if err != nil {
		b.Fatal(err)
	}
	flows, err := dcnflow.DiurnalWorkload(dcnflow.DiurnalConfig{
		N: 40, T0: 0, T1: 100, PeakFactor: 5,
		SizeMean: 8, SizeStddev: 2, Hosts: ft.Hosts, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	model := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1e12}
	runOnce := func(warm bool, rec dcnflow.DecisionRecorder) dcnflow.RollingStats {
		res, _, err := dcnflow.SolveOnlineRolling(ft.Graph, flows, model, dcnflow.RollingOptions{
			Policy: dcnflow.FixedPeriod{Period: 2},
			DCFSR: dcnflow.DCFSROptions{
				Seed:      1,
				Solver:    dcnflow.SolverOptions{MaxIters: 30},
				WarmStart: warm,
			},
			Recorder: rec,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Stats
	}
	b.Run("recorder=off", func(b *testing.B) {
		var warm dcnflow.RollingStats
		for i := 0; i < b.N; i++ {
			warm = runOnce(true, nil)
		}
		b.StopTimer()
		cold := runOnce(false, nil)
		b.ReportMetric(float64(warm.FWIters), "fw-iters-warm")
		b.ReportMetric(float64(cold.FWIters), "fw-iters-cold")
		b.ReportMetric(float64(warm.Epochs), "epochs")
	})
	b.Run("recorder=on", func(b *testing.B) {
		var decisions int
		for i := 0; i < b.N; i++ {
			mem := &dcnflow.DecisionMemory{}
			runOnce(true, mem)
			decisions = len(mem.Records)
		}
		b.ReportMetric(float64(decisions), "decisions")
	})
}

// deltaMiceFixture drives the rolling scheduler through an elephant-mice
// trace by hand: `elephants` long-lived flows all released at t=0 against a
// single shared deadline (one full epoch plus per-arrival delta epochs, all
// at tau=0, so their reservations share piece boundaries), then `mice`
// short-span arrivals at unit spacing, each triggering its own per-arrival
// re-plan. It returns the scheduler after the elephant phase so callers can
// time the mice phase alone — the per-arrival re-plan cost with `elephants`
// flows in flight.
type deltaMiceFixture struct {
	sched *dcnflow.RollingScheduler
	hosts []dcnflow.NodeID
}

const deltaHorizonEnd = 10_000.0

func newDeltaMiceFixture(b *testing.B, ft *dcnflow.Topology, elephants int, delta, warm bool) *deltaMiceFixture {
	b.Helper()
	model := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1e12}
	opts := dcnflow.RollingOptions{
		Policy: dcnflow.ArrivalCount{N: 1},
		DCFSR: dcnflow.DCFSROptions{
			Seed:      1,
			Solver:    dcnflow.SolverOptions{MaxIters: 30},
			WarmStart: warm,
		},
	}
	if delta {
		opts.Delta = dcnflow.DeltaOptions{Enabled: true, DriftBound: 0.5}
	}
	s, err := dcnflow.NewRollingScheduler(ft.Graph, model, dcnflow.Interval{Start: 0, End: deltaHorizonEnd}, opts)
	if err != nil {
		b.Fatal(err)
	}
	f := &deltaMiceFixture{sched: s, hosts: ft.Hosts}
	h := len(ft.Hosts)
	for i := 0; i < elephants; i++ {
		err := s.Arrive(dcnflow.Flow{
			ID:       dcnflow.FlowID(i + 1),
			Src:      ft.Hosts[i%h],
			Dst:      ft.Hosts[(i+1+i%(h-1))%h],
			Release:  0,
			Deadline: deltaHorizonEnd,
			Size:     100,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return f
}

// runMice fires `mice` short-span arrivals at unit spacing and returns the
// wall-clock per-arrival cost in microseconds. Every arrival is one epoch
// re-solve (ArrivalCount{N: 1}); with delta enabled the elephants' tail
// interval is reused, without it every arrival re-plans the whole in-flight
// set.
func (f *deltaMiceFixture) runMice(b *testing.B, mice int) float64 {
	b.Helper()
	h := len(f.hosts)
	start := time.Now()
	for i := 0; i < mice; i++ {
		t := 10 + float64(i)
		err := f.sched.Arrive(dcnflow.Flow{
			ID:       dcnflow.FlowID(1_000_000 + i),
			Src:      f.hosts[(3*i)%h],
			Dst:      f.hosts[(3*i+5)%h],
			Release:  t,
			Deadline: t + 8,
			Size:     4,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return float64(time.Since(start).Microseconds()) / float64(mice)
}

// BenchmarkOnlineDelta measures the sensitivity-bounded delta re-solve of
// the rolling scheduler on elephant-mice traces: a standing fleet of
// long-lived elephants plus a stream of per-arrival mice (ISSUE: per-arrival
// re-plan cost must stay sublinear in the in-flight flow count).
//
//   - smoke: the CI-sized fleet; sanity-checks that delta epochs actually
//     fire and intervals are reused (`make bench-online-smoke`).
//   - full-vs-delta: the same small trace with delta off vs on; reports the
//     per-arrival speedup and both solved-interval counts.
//   - scaling: per-arrival cost at 1.5k/12k/96k in-flight elephants (the
//     largest point is a ~96k-flow trace) and the fitted log-log slope —
//     sublinear means slope < 1, tracked in BENCH_solver.json.
func BenchmarkOnlineDelta(b *testing.B) {
	ft, err := dcnflow.FatTree(4, 1e12)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("smoke", func(b *testing.B) {
		var stats dcnflow.RollingStats
		var perArrival float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			f := newDeltaMiceFixture(b, ft, 192, true, true)
			b.StartTimer()
			perArrival = f.runMice(b, 64)
			stats = f.sched.Stats()
		}
		if stats.DeltaEpochs == 0 {
			b.Fatal("no delta epochs fired")
		}
		if stats.ReusedIntervals == 0 {
			b.Fatal("delta epochs reused no intervals")
		}
		b.ReportMetric(perArrival, "per-arrival-us")
		b.ReportMetric(float64(stats.ReusedIntervals), "reused-intervals")
	})
	b.Run("full-vs-delta", func(b *testing.B) {
		const elephants, mice = 192, 24
		var speedup, solvedFull, solvedDelta float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			full := newDeltaMiceFixture(b, ft, elephants, false, true)
			del := newDeltaMiceFixture(b, ft, elephants, true, true)
			b.StartTimer()
			usFull := full.runMice(b, mice)
			usDelta := del.runMice(b, mice)
			speedup = usFull / usDelta
			solvedFull = float64(full.sched.Stats().SolvedIntervals)
			solvedDelta = float64(del.sched.Stats().SolvedIntervals)
		}
		b.ReportMetric(speedup, "speedup")
		b.ReportMetric(solvedFull, "solved-intervals-full")
		b.ReportMetric(solvedDelta, "solved-intervals-delta")
	})
	b.Run("scaling", func(b *testing.B) {
		fleets := []int{1500, 12_000, 96_000}
		perArrival := make([]float64, len(fleets))
		for i := 0; i < b.N; i++ {
			for j, n := range fleets {
				b.StopTimer()
				f := newDeltaMiceFixture(b, ft, n, true, true)
				b.StartTimer()
				perArrival[j] = f.runMice(b, 256)
			}
		}
		for j, n := range fleets {
			b.ReportMetric(perArrival[j], fmt.Sprintf("per-arrival-us-%d", n))
		}
		// Fitted log-log slope of per-arrival cost vs in-flight count over
		// the measured fleet sizes: < 1 is sublinear.
		slope := math.Log(perArrival[len(fleets)-1]/perArrival[0]) /
			math.Log(float64(fleets[len(fleets)-1])/float64(fleets[0]))
		b.ReportMetric(slope, "scaling-slope")
	})
}

// BenchmarkDeltaSeed measures the warm seeding of touched-interval delta
// re-solves: the same elephant-mice trace with the per-interval Frank–Wolfe
// solves seeded from the previous epoch's / previous interval's path
// decomposition (WarmStart on) vs hop-count cold starts. Reports both
// per-arrival costs plus the seeded-interval count of the warm run, tracked
// in BENCH_solver.json by `make bench`.
func BenchmarkDeltaSeed(b *testing.B) {
	ft, err := dcnflow.FatTree(4, 1e12)
	if err != nil {
		b.Fatal(err)
	}
	var seededUs, coldUs float64
	var stats dcnflow.RollingStats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		seeded := newDeltaMiceFixture(b, ft, 192, true, true)
		cold := newDeltaMiceFixture(b, ft, 192, true, false)
		b.StartTimer()
		seededUs = seeded.runMice(b, 64)
		coldUs = cold.runMice(b, 64)
		stats = seeded.sched.Stats()
	}
	if stats.SeededIntervals == 0 {
		b.Fatal("warm delta run seeded no intervals")
	}
	b.ReportMetric(seededUs, "per-arrival-us-seeded")
	b.ReportMetric(coldUs, "per-arrival-us-cold")
	b.ReportMetric(float64(stats.SeededIntervals), "seeded-intervals")
}

// BenchmarkSimulator measures the discrete-event simulator on a 100-flow
// SP+MCF schedule.
func BenchmarkSimulator(b *testing.B) {
	ft, err := dcnflow.FatTree(8, 1e12)
	if err != nil {
		b.Fatal(err)
	}
	flows, err := dcnflow.UniformWorkload(dcnflow.WorkloadConfig{
		N: 100, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	model := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1e12}
	sp, err := dcnflow.SPMCF(ft.Graph, flows, model)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dcnflow.Simulate(ft.Graph, flows, sp.Schedule, model, dcnflow.SimOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Large-topology benchmarks (BENCH_graph.json, `make bench-graph`) -------

// largeFixtures are the 1k–100k-node fabrics of the scale benchmarks, built
// once per process and shared across benchmark functions: FatTree k=16
// (1344 nodes) and k=32 (9472 nodes), a VL2 Clos at datacenter scale (9144
// nodes), a 10k-node Jellyfish random graph and a 100k-node Jellyfish —
// the stress fixture for the BFS-renumbered cache-blocked layout (random
// wiring is the worst case for insertion-order locality).
var largeFixtures = struct {
	once sync.Once
	tops map[string]*dcnflow.Topology
	err  error
}{}

func largeFixture(b *testing.B, name string) *dcnflow.Topology {
	b.Helper()
	largeFixtures.once.Do(func() {
		largeFixtures.tops = map[string]*dcnflow.Topology{}
		for _, f := range []struct {
			name  string
			build func() (*dcnflow.Topology, error)
		}{
			{"fattree16", func() (*dcnflow.Topology, error) { return dcnflow.FatTree(16, 1e12) }},
			{"fattree32", func() (*dcnflow.Topology, error) { return dcnflow.FatTree(32, 1e12) }},
			{"vl2-9k", func() (*dcnflow.Topology, error) { return dcnflow.VL2(48, 96, 1000, 8, 1e12) }},
			{"jellyfish10k", func() (*dcnflow.Topology, error) { return dcnflow.Jellyfish(5000, 8, 1, 1e12, 1) }},
			{"jellyfish100k", func() (*dcnflow.Topology, error) { return dcnflow.Jellyfish(50_000, 8, 1, 1e12, 1) }},
		} {
			top, err := f.build()
			if err != nil {
				largeFixtures.err = fmt.Errorf("%s: %w", f.name, err)
				return
			}
			largeFixtures.tops[f.name] = top
		}
	})
	if largeFixtures.err != nil {
		b.Fatal(largeFixtures.err)
	}
	top, ok := largeFixtures.tops[name]
	if !ok {
		b.Fatalf("unknown large fixture %q", name)
	}
	return top
}

// BenchmarkSSSPLarge measures one full shortest-path tree build on each
// large fabric, comparing the binary-heap Dijkstra against the dial bucket
// queue on the unit weights the cold-start oracle sweep uses (where the
// dial variant is selected automatically). It runs on the compiled hot
// view — the BFS-renumbered, cache-blocked layout the oracle itself
// traverses — so BENCH_graph.json tracks exactly what production sweeps
// pay per tree.
func BenchmarkSSSPLarge(b *testing.B) {
	for _, name := range []string{"fattree16", "fattree32", "vl2-9k", "jellyfish10k", "jellyfish100k"} {
		b.Run(name, func(b *testing.B) {
			top := largeFixture(b, name)
			c := graph.Compile(top.Graph)
			scr := c.AcquireScratch()
			defer c.ReleaseScratch(scr)
			w := scr.SlotWeights()
			for i := range w {
				w[i] = 1
			}
			src := c.ToHot(top.Hosts[0])
			b.Run("heap", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					scr.Tree(src, nil)
				}
			})
			b.Run("dial", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					scr.TreeDial(src, nil, 1, 1)
				}
			})
		})
	}
}

// largeCommodities spreads 64 commodities with distinct sources across a
// fixture's hosts, so one oracle sweep has 64 independent source groups to
// fan out.
func largeCommodities(top *dcnflow.Topology) []mcfsolve.Commodity {
	n := len(top.Hosts)
	comms := make([]mcfsolve.Commodity, 64)
	for i := range comms {
		comms[i] = mcfsolve.Commodity{
			Src:    top.Hosts[(i*(n/64+1))%n],
			Dst:    top.Hosts[(i*(n/64+1)+n/2)%n],
			Demand: 1 + float64(i%5),
		}
	}
	return comms
}

// BenchmarkFrankWolfeLarge measures one single-interval F-MCF solve (64
// commodities, 8 Frank–Wolfe iterations) on the large fabrics, sequential
// vs all-core intra-solve parallelism. The acceptance bar for the parallel
// oracle is workers=N beating workers=1 by >= 2x on fattree16; outputs are
// byte-identical at every worker count (TestSolveBitIdenticalAcrossOracleWorkers).
func BenchmarkFrankWolfeLarge(b *testing.B) {
	model := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1e12}
	for _, name := range []string{"fattree16", "fattree32", "jellyfish10k", "jellyfish100k"} {
		b.Run(name, func(b *testing.B) {
			top := largeFixture(b, name)
			comms := largeCommodities(top)
			grid := []int{1}
			if n := runtime.NumCPU(); n > 1 {
				if n > 2 {
					grid = append(grid, 2)
				}
				grid = append(grid, n)
			}
			if name == "jellyfish100k" {
				// One all-core point only: sequential 100k-node solves
				// would dominate the whole suite's runtime.
				grid = []int{runtime.NumCPU()}
			}
			for _, workers := range grid {
				b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
					s, err := mcfsolve.NewSolver(top.Graph, model, mcfsolve.Options{
						MaxIters: 8, OracleWorkers: workers,
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := s.Solve(comms); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// benchEngineSolve runs one engine request of the compile-once/solve-many
// benchmark scenario (fat-tree k=8 under a small flow batch — the
// cache-win shape: compilation dominates a cold solve).
func benchEngineSolve(b *testing.B, eng *dcnflow.Engine) {
	b.Helper()
	r := eng.Solve(context.Background(), dcnflow.Request{
		Scenario: engineBenchScenario(),
		Solver:   dcnflow.SolverDCFSR,
		Options:  engineBenchOptions(),
	})
	if r.Err != nil {
		b.Fatal(r.Err)
	}
}

// BenchmarkEngineRepeatedSolve measures the warm path of the Engine: one
// shared engine solving the same scenario repeatedly, every request served
// from the compiled-instance cache and pooled solver scratch. Compare
// against BenchmarkEngineColdVsWarm/cold for the cache win
// (TestEngineWarmCacheAllocWin pins allocs-warm <= allocs-cold/2).
func BenchmarkEngineRepeatedSolve(b *testing.B) {
	eng := dcnflow.NewEngine(dcnflow.EngineOptions{})
	benchEngineSolve(b, eng) // prime the caches
	hits0 := eng.Stats().Hits
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchEngineSolve(b, eng)
	}
	b.StopTimer()
	b.ReportMetric(float64(eng.Stats().Hits-hits0)/float64(b.N), "cache-hits/op")
}

// BenchmarkEngineColdVsWarm contrasts a fresh engine per solve (topology
// generation + graph compilation + scratch allocation every time) with one
// warm shared engine on the identical request.
func BenchmarkEngineColdVsWarm(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchEngineSolve(b, dcnflow.NewEngine(dcnflow.EngineOptions{}))
		}
	})
	b.Run("warm", func(b *testing.B) {
		eng := dcnflow.NewEngine(dcnflow.EngineOptions{})
		benchEngineSolve(b, eng)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchEngineSolve(b, eng)
		}
	})
}
