package dcnflow

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Serve request outcome labels, the vocabulary of the
// dcnflow_requests_total{outcome=...} counter on /metrics.
const (
	outcomeOK          = "ok"
	outcomeBadRequest  = "bad_request"
	outcomeSolverError = "solver_error"
	outcomeTimeout     = "timeout"
	outcomeRejected    = "rejected" // admission 429
	outcomeDrained     = "drained"  // admission 503 (drain or disconnect)
)

// latencyBuckets are the cumulative histogram upper bounds (seconds) of
// dcnflow_request_duration_seconds; +Inf is implicit.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// reqLabel keys one dcnflow_requests_total series.
type reqLabel struct {
	endpoint string // "solve" | "batch"
	outcome  string
	class    string // priority class (canonicalised)
}

// serveMetrics accumulates the serve handler's counters and the request
// latency histogram. Gauges (tokens, queue depth, shard occupancy) are
// read live at render time from the admitter and engine group, so the
// struct itself holds only monotone state. Safe for concurrent use.
type serveMetrics struct {
	mu         sync.Mutex
	requests   map[reqLabel]uint64
	batchItems map[string]uint64 // "ok" | "error"

	bucketCount []uint64 // one per latencyBuckets entry, non-cumulative
	infCount    uint64
	latencySum  float64
}

func newServeMetrics() *serveMetrics {
	return &serveMetrics{
		requests:    make(map[reqLabel]uint64),
		batchItems:  make(map[string]uint64),
		bucketCount: make([]uint64, len(latencyBuckets)),
	}
}

// record counts one finished HTTP request and its latency in seconds.
func (m *serveMetrics) record(endpoint, outcome, class string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[reqLabel{endpoint: endpoint, outcome: outcome, class: canonicalPriority(class)}]++
	if seconds < 0 {
		seconds = 0
	}
	m.latencySum += seconds
	for i, le := range latencyBuckets {
		if seconds <= le {
			m.bucketCount[i]++
			return
		}
	}
	m.infCount++
}

// recordBatchItems counts per-item batch outcomes.
func (m *serveMetrics) recordBatchItems(ok, failed int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ok > 0 {
		m.batchItems["ok"] += uint64(ok)
	}
	if failed > 0 {
		m.batchItems["error"] += uint64(failed)
	}
}

// promValue formats a sample value the way the Prometheus text exposition
// expects (shortest round-trippable float).
func promValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// render writes the Prometheus text exposition (version 0.0.4) of the
// handler's state: request counters, the latency histogram, per-shard
// cache counters and occupancy, and — when admission control is on — the
// live token and queue gauges. Series order is deterministic (sorted
// label sets) so the output is stable for tests and scrapers alike.
func (m *serveMetrics) render(w io.Writer, shards []EngineStats, adm *admitter) {
	m.mu.Lock()
	requests := make([]reqLabel, 0, len(m.requests))
	for k := range m.requests {
		requests = append(requests, k)
	}
	sort.Slice(requests, func(i, j int) bool {
		a, b := requests[i], requests[j]
		if a.endpoint != b.endpoint {
			return a.endpoint < b.endpoint
		}
		if a.outcome != b.outcome {
			return a.outcome < b.outcome
		}
		return a.class < b.class
	})
	reqCounts := make([]uint64, len(requests))
	for i, k := range requests {
		reqCounts[i] = m.requests[k]
	}
	itemKeys := make([]string, 0, len(m.batchItems))
	for k := range m.batchItems {
		itemKeys = append(itemKeys, k)
	}
	sort.Strings(itemKeys)
	itemCounts := make([]uint64, len(itemKeys))
	for i, k := range itemKeys {
		itemCounts[i] = m.batchItems[k]
	}
	buckets := append([]uint64(nil), m.bucketCount...)
	infCount := m.infCount
	latencySum := m.latencySum
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP dcnflow_requests_total Solve-carrying HTTP requests by endpoint, outcome and priority class.")
	fmt.Fprintln(w, "# TYPE dcnflow_requests_total counter")
	for i, k := range requests {
		fmt.Fprintf(w, "dcnflow_requests_total{class=%q,endpoint=%q,outcome=%q} %d\n",
			k.class, k.endpoint, k.outcome, reqCounts[i])
	}

	fmt.Fprintln(w, "# HELP dcnflow_batch_items_total Per-item outcomes inside /v1/batch requests.")
	fmt.Fprintln(w, "# TYPE dcnflow_batch_items_total counter")
	for i, k := range itemKeys {
		fmt.Fprintf(w, "dcnflow_batch_items_total{outcome=%q} %d\n", k, itemCounts[i])
	}

	fmt.Fprintln(w, "# HELP dcnflow_request_duration_seconds End-to-end request latency on the server (admission wait included).")
	fmt.Fprintln(w, "# TYPE dcnflow_request_duration_seconds histogram")
	var cum uint64
	for i, le := range latencyBuckets {
		cum += buckets[i]
		fmt.Fprintf(w, "dcnflow_request_duration_seconds_bucket{le=%q} %d\n", promValue(le), cum)
	}
	cum += infCount
	fmt.Fprintf(w, "dcnflow_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "dcnflow_request_duration_seconds_sum %s\n", promValue(latencySum))
	fmt.Fprintf(w, "dcnflow_request_duration_seconds_count %d\n", cum)

	fmt.Fprintln(w, "# HELP dcnflow_engine_cache_hits_total Compiled-instance cache hits per engine shard.")
	fmt.Fprintln(w, "# TYPE dcnflow_engine_cache_hits_total counter")
	for i, s := range shards {
		fmt.Fprintf(w, "dcnflow_engine_cache_hits_total{shard=\"%d\"} %d\n", i, s.Hits)
	}
	fmt.Fprintln(w, "# HELP dcnflow_engine_cache_misses_total Compiled-instance cache misses per engine shard.")
	fmt.Fprintln(w, "# TYPE dcnflow_engine_cache_misses_total counter")
	for i, s := range shards {
		fmt.Fprintf(w, "dcnflow_engine_cache_misses_total{shard=\"%d\"} %d\n", i, s.Misses)
	}
	fmt.Fprintln(w, "# HELP dcnflow_engine_cache_evictions_total Compiled-instance cache evictions per engine shard.")
	fmt.Fprintln(w, "# TYPE dcnflow_engine_cache_evictions_total counter")
	for i, s := range shards {
		fmt.Fprintf(w, "dcnflow_engine_cache_evictions_total{shard=\"%d\"} %d\n", i, s.Evictions)
	}
	fmt.Fprintln(w, "# HELP dcnflow_engine_cache_entries Compiled instances resident per engine shard (occupancy).")
	fmt.Fprintln(w, "# TYPE dcnflow_engine_cache_entries gauge")
	for i, s := range shards {
		fmt.Fprintf(w, "dcnflow_engine_cache_entries{shard=\"%d\"} %d\n", i, s.Size)
	}
	fmt.Fprintln(w, "# HELP dcnflow_engine_cache_capacity Compiled-instance cache capacity per engine shard.")
	fmt.Fprintln(w, "# TYPE dcnflow_engine_cache_capacity gauge")
	for i, s := range shards {
		fmt.Fprintf(w, "dcnflow_engine_cache_capacity{shard=\"%d\"} %d\n", i, s.Capacity)
	}

	if adm != nil {
		tokens, queued := adm.snapshot()
		fmt.Fprintln(w, "# HELP dcnflow_admission_tokens Admission tokens currently available in the bucket.")
		fmt.Fprintln(w, "# TYPE dcnflow_admission_tokens gauge")
		fmt.Fprintf(w, "dcnflow_admission_tokens %s\n", promValue(tokens))
		fmt.Fprintln(w, "# HELP dcnflow_admission_queue_depth Requests waiting in the bounded accept queue.")
		fmt.Fprintln(w, "# TYPE dcnflow_admission_queue_depth gauge")
		fmt.Fprintf(w, "dcnflow_admission_queue_depth %d\n", queued)
	}
}
