module dcnflow

go 1.24
