package dcnflow

import (
	"io"

	"dcnflow/internal/decision"
)

// ErrBadDecisionLog reports a decision log that failed strict decoding or
// validation; errors from LoadDecisionLog wrap it (mirroring
// ErrBadScenario).
var ErrBadDecisionLog = decision.ErrBadLog

// Decision-log subsystem re-exports (internal/decision): typed records of
// every online-scheduler admission and replan decision, counterfactual
// replay, and the weighted multi-objective fitness.
type (
	// DecisionRecord is one typed decision of an online scheduler: flow,
	// epoch, admit/reject with reason, chosen path, scored alternatives,
	// residual slack, all under a deterministic sequence number.
	DecisionRecord = decision.Record
	// DecisionKind classifies a record ("admit", "reject", "replan").
	DecisionKind = decision.Kind
	// DecisionAlternative is one scored candidate path a scheduler
	// considered but did not choose.
	DecisionAlternative = decision.Alternative
	// DecisionRecorder receives records as a scheduler makes them; attach
	// one via OnlineOptions.Recorder or RollingOptions.Recorder. Nil
	// disables tracing at zero cost.
	DecisionRecorder = decision.Recorder
	// DecisionMemory is the in-memory DecisionRecorder; its Log method
	// packages the trace for serialization.
	DecisionMemory = decision.Memory
	// DecisionMeta is a log's run-description header — enough to rebuild
	// the instance and scheduler for a counterfactual replay.
	DecisionMeta = decision.Meta
	// DecisionLog is a complete recorded trace (meta + records), JSONL
	// serialized.
	DecisionLog = decision.Log
	// DecisionOverrides forces specific decisions during a counterfactual
	// re-run (a forced path, or a flipped admission).
	DecisionOverrides = decision.Overrides
	// DecisionReplayInput is one counterfactual-replay request for
	// ReplayDecisions.
	DecisionReplayInput = decision.ReplayInput
	// DecisionReplayOptions tunes the counterfactual generation (top-k,
	// flip-admission, fitness weights).
	DecisionReplayOptions = decision.ReplayOptions
	// DecisionReplayReport is the replay outcome: the base run plus one
	// sim-validated row per counterfactual with its regret.
	DecisionReplayReport = decision.ReplayReport
	// DecisionOutcome is one full run's sim-validated summary (energy,
	// misses, tail slack, weighted score).
	DecisionOutcome = decision.Outcome
	// Fitness collapses a run or sweep cell to one weighted scalar (lower
	// better); wire it into SweepOptions.Fitness to rank policies.
	Fitness = decision.Fitness
	// FitnessComponents are the raw per-run quantities a Fitness weighs.
	FitnessComponents = decision.FitnessComponents
)

// The decision-record kinds.
const (
	// DecisionAdmit marks an admitted flow.
	DecisionAdmit = decision.KindAdmit
	// DecisionReject marks a refused flow.
	DecisionReject = decision.KindReject
	// DecisionReplan marks a rolling epoch boundary.
	DecisionReplan = decision.KindReplan
)

// DefaultFitness weighs energy alone — the paper's objective.
func DefaultFitness() Fitness { return decision.DefaultFitness() }

// LoadDecisionLog strictly decodes one JSONL decision log; arbitrary input
// yields a validated log or an error wrapping ErrBadDecisionLog, never a
// panic.
func LoadDecisionLog(r io.Reader) (*DecisionLog, error) { return decision.LoadLog(r) }

// LoadDecisionLogFile is LoadDecisionLog on a file path.
func LoadDecisionLogFile(path string) (*DecisionLog, error) { return decision.LoadLogFile(path) }

// SaveDecisionLog validates and writes a log in the canonical JSONL form;
// Save(Load(x)) is byte-identical for canonical x.
func SaveDecisionLog(w io.Writer, l *DecisionLog) error { return decision.SaveLog(w, l) }

// SaveDecisionLogFile is SaveDecisionLog on a file path.
func SaveDecisionLogFile(path string, l *DecisionLog) error { return decision.SaveLogFile(path, l) }

// ReplayDecisions re-runs a recorded trace against the realized arrival
// sequence, substituting the recorded top-k alternatives one decision at a
// time and re-scoring each full run with the discrete-event simulator —
// per-decision regret for the online schedulers. See decision.Replay.
func ReplayDecisions(in DecisionReplayInput) (*DecisionReplayReport, error) {
	return decision.Replay(in)
}
