package dcnflow

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"dcnflow/internal/decision"
	"dcnflow/internal/stats"
	"dcnflow/internal/sweep"
)

// ErrBadSweep reports a sweep spec that failed strict decoding or
// validation; the wrapped message names the offending field.
var ErrBadSweep = errors.New("dcnflow: invalid sweep spec")

// MaxSweepCells bounds the grid a single SweepSpec may expand to. The
// product of five axis lengths overflows long before any machine could
// solve the cells, so Validate rejects absurd grids up front with an error
// instead of letting Cells try to allocate them.
const MaxSweepCells = 1 << 20

// SweepSpec is a declarative, JSON-serializable experiment grid — the batch
// counterpart of ScenarioSpec. Its axes (topologies × workloads × deadline
// tightness × seeds) expand to concrete scenarios, each crossed with every
// listed solver, giving CellCount = T*W*G*S*V cells in a fixed nested-loop
// order (solvers innermost, so one scenario's cells are adjacent). A spec
// reproduces a whole evaluation campaign exactly: LoadSweep/SaveSweep
// round-trip byte-identically and every cell's randomness is derived from
// spec data alone.
type SweepSpec struct {
	// Name labels the sweep in reports; free-form.
	Name string `json:"name,omitempty"`
	// Topologies is the topology axis; at least one entry.
	Topologies []TopologySpec `json:"topologies"`
	// Workloads is the workload axis; at least one entry. Per-entry Seed
	// and Tightness fields are overridden per cell by the Seeds and
	// Tightness axes below.
	Workloads []WorkloadSpec `json:"workloads"`
	// Model is the link power model shared by every cell.
	Model ModelSpec `json:"model"`
	// Tightness is the deadline-tightness axis: each scalar rescales every
	// generated flow's window via WorkloadSpec.Tightness. Empty means {1}
	// (generated deadlines unchanged).
	Tightness []float64 `json:"tightness,omitempty"`
	// Seeds is the randomness axis: each entry seeds both the cell's
	// workload generation and its solver (rounding draws, ECMP picks).
	// Empty means {1}.
	Seeds []int64 `json:"seeds,omitempty"`
	// Solvers lists registered solver names, each run on every scenario.
	Solvers []string `json:"solvers"`
}

// tightnessAxis returns the tightness axis with the {1} default applied.
func (s *SweepSpec) tightnessAxis() []float64 {
	if len(s.Tightness) == 0 {
		return []float64{1}
	}
	return s.Tightness
}

// seedAxis returns the seed axis with the {1} default applied.
func (s *SweepSpec) seedAxis() []int64 {
	if len(s.Seeds) == 0 {
		return []int64{1}
	}
	return s.Seeds
}

// Validate checks the spec without generating anything expensive: every
// axis entry validates, every solver is registered in the package-level
// registry, and the expanded grid stays below MaxSweepCells.
func (s *SweepSpec) Validate() error {
	if s == nil {
		return fmt.Errorf("%w: nil spec", ErrBadSweep)
	}
	if len(s.Topologies) == 0 {
		return fmt.Errorf("%w: topologies must list at least one entry", ErrBadSweep)
	}
	for i, t := range s.Topologies {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("%w: topologies[%d]: %v", ErrBadSweep, i, err)
		}
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("%w: workloads must list at least one entry", ErrBadSweep)
	}
	for i, w := range s.Workloads {
		if err := w.Validate(); err != nil {
			return fmt.Errorf("%w: workloads[%d]: %v", ErrBadSweep, i, err)
		}
	}
	if err := s.Model.Model().Validate(); err != nil {
		return fmt.Errorf("%w: model: %v", ErrBadSweep, err)
	}
	for i, g := range s.Tightness {
		if g <= 0 {
			return fmt.Errorf("%w: tightness[%d] must be positive, got %v", ErrBadSweep, i, g)
		}
	}
	if len(s.Solvers) == 0 {
		return fmt.Errorf("%w: solvers must list at least one registered solver", ErrBadSweep)
	}
	registered := make(map[string]bool)
	for _, name := range SolverNames() {
		registered[name] = true
	}
	for i, name := range s.Solvers {
		if !registered[name] {
			return fmt.Errorf("%w: solvers[%d]: unknown solver %q (registered: %s)",
				ErrBadSweep, i, name, strings.Join(SolverNames(), ", "))
		}
	}
	// Overflow-safe cell count check: multiply up with a running bound.
	count := 1
	for _, axis := range []int{len(s.Topologies), len(s.Workloads), len(s.tightnessAxis()), len(s.seedAxis()), len(s.Solvers)} {
		if axis > MaxSweepCells/count {
			return fmt.Errorf("%w: grid expands past %d cells", ErrBadSweep, MaxSweepCells)
		}
		count *= axis
	}
	return nil
}

// CellCount returns the number of cells the spec expands to.
func (s *SweepSpec) CellCount() int {
	return len(s.Topologies) * len(s.Workloads) * len(s.tightnessAxis()) * len(s.seedAxis()) * len(s.Solvers)
}

// SweepCell is one expanded grid point: a fully resolved scenario (seed and
// tightness baked into the spec, Name set to a deterministic label) paired
// with one solver. Cells that differ only in solver share a bit-identical
// scenario, so cross-solver comparisons on a cell group are apples to
// apples.
type SweepCell struct {
	// Index is the cell's position in the fixed expansion order.
	Index int
	// Solver is the registered solver name this cell runs.
	Solver string
	// Tightness and Seed echo the axis values baked into Scenario.
	Tightness float64
	Seed      int64
	// TopologyLabel and WorkloadLabel are the axis labels, disambiguated
	// with a "#<index>" suffix when two axis entries share a Label() (two
	// uniform workloads differing only in size_mean, say) — so scenario
	// names and JSONL coordinates are always unique per scenario.
	TopologyLabel, WorkloadLabel string
	// Scenario is the resolved per-cell scenario spec.
	Scenario ScenarioSpec
}

// dedupeLabels suffixes duplicate axis labels with their axis index so two
// entries that stringify identically stay distinguishable in reports.
func dedupeLabels(labels []string) []string {
	seen := make(map[string]int, len(labels))
	for _, l := range labels {
		seen[l]++
	}
	out := make([]string, len(labels))
	for i, l := range labels {
		if seen[l] > 1 {
			out[i] = fmt.Sprintf("%s#%d", l, i)
		} else {
			out[i] = l
		}
	}
	return out
}

// Cells expands the grid in its fixed nested-loop order: topologies,
// workloads, tightness, seeds, solvers (innermost). The expansion is a pure
// function of the spec — per-cell seeds come from the seed axis, never from
// a shared RNG — which is the root of the engine's worker-count-independent
// output.
func (s *SweepSpec) Cells() []SweepCell {
	topoLabels := make([]string, len(s.Topologies))
	for i, t := range s.Topologies {
		topoLabels[i] = t.Label()
	}
	topoLabels = dedupeLabels(topoLabels)
	wlLabels := make([]string, len(s.Workloads))
	for i, w := range s.Workloads {
		wlLabels[i] = w.Label()
	}
	wlLabels = dedupeLabels(wlLabels)

	cells := make([]SweepCell, 0, s.CellCount())
	for ti, top := range s.Topologies {
		for wi, wl := range s.Workloads {
			for _, tight := range s.tightnessAxis() {
				for _, seed := range s.seedAxis() {
					scen := ScenarioSpec{
						Name:     fmt.Sprintf("%s/%s/x%g/s%d", topoLabels[ti], wlLabels[wi], tight, seed),
						Topology: top,
						Workload: wl,
						Model:    s.Model,
						Seed:     seed,
					}
					scen.Workload.Seed = seed
					scen.Workload.Tightness = tight
					for _, solver := range s.Solvers {
						cells = append(cells, SweepCell{
							Index:         len(cells),
							Solver:        solver,
							Tightness:     tight,
							Seed:          seed,
							TopologyLabel: topoLabels[ti],
							WorkloadLabel: wlLabels[wi],
							Scenario:      scen,
						})
					}
				}
			}
		}
	}
	return cells
}

// LoadSweep strictly decodes one JSON sweep spec: unknown fields, trailing
// garbage and invalid parameter combinations are all rejected with errors
// wrapping ErrBadSweep that name the problem.
func LoadSweep(r io.Reader) (*SweepSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec SweepSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSweep, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after the spec object", ErrBadSweep)
	}
	// Normalize empty axis arrays to nil: SaveSweep omits them (omitempty),
	// so a loaded `"tightness": []` must compare equal to its re-loaded
	// form for the canonical round-trip to hold.
	if len(spec.Tightness) == 0 {
		spec.Tightness = nil
	}
	if len(spec.Seeds) == 0 {
		spec.Seeds = nil
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// LoadSweepFile is LoadSweep on a file path.
func LoadSweepFile(path string) (*SweepSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dcnflow: %w", err)
	}
	defer f.Close()
	spec, err := LoadSweep(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// SaveSweep validates the spec and writes it as canonical indented JSON
// (two-space indent, trailing newline), mirroring SaveScenario.
// SaveSweep(LoadSweep(x)) is byte-identical for canonical x.
func SaveSweep(w io.Writer, spec *SweepSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return fmt.Errorf("dcnflow: encoding sweep: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// SaveSweepFile is SaveSweep on a file path.
func SaveSweepFile(path string, spec *SweepSpec) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dcnflow: %w", err)
	}
	if err := SaveSweep(f, spec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SweepCellResult is one solved cell, shaped for JSONL streaming (one
// marshalled line per cell; `dcnflow sweep -out`). Every field except
// RuntimeMS is a deterministic function of the spec — the determinism
// regression tests compare JSONL bodies across worker counts with only the
// runtime_ms field normalised away.
type SweepCellResult struct {
	// Cell is the cell index in expansion order (JSONL lines are emitted
	// in this order regardless of worker count).
	Cell int `json:"cell"`
	// Scenario is the resolved scenario label
	// ("<topology>/<workload>/x<tightness>/s<seed>").
	Scenario string `json:"scenario"`
	// Topology and Workload are the axis labels.
	Topology string `json:"topology"`
	Workload string `json:"workload"`
	// Tightness and Seed are the remaining axis coordinates.
	Tightness float64 `json:"tightness"`
	Seed      int64   `json:"seed"`
	// Solver is the registered solver name.
	Solver string `json:"solver"`
	// Energy is the solver's accounted total energy.
	Energy float64 `json:"energy,omitempty"`
	// LB is the scenario's shared normalizer (computed once per scenario
	// group unless SweepOptions.SkipLB): the fractional relaxation value
	// the paper's Fig. 2 divides by, in which every flow transmits at its
	// density. It certifiably lower-bounds the Random-Schedule family's
	// energies; scheduling-optimal solvers (the MCF family) may dip
	// slightly below it on shared-path topologies, so LBRatio = Energy/LB
	// is a comparison ratio, not a guaranteed >= 1 quantity — the
	// guaranteed inequality is Solution.Energy >= Solution.LowerBound for
	// solvers that report their own bound, and the conformance suite
	// asserts exactly that.
	LB      float64 `json:"lb,omitempty"`
	LBRatio float64 `json:"lb_ratio,omitempty"`
	// Fitness, Misses and SlackP99 are populated when SweepOptions.Fitness
	// is set: the cell's schedule is re-scored by the discrete-event
	// simulator and collapsed to the weighted scalar (lower better), so a
	// sweep can rank replan policies on one axis instead of raw energy.
	Fitness  float64 `json:"fitness,omitempty"`
	Misses   int     `json:"misses,omitempty"`
	SlackP99 float64 `json:"slack_p99,omitempty"`
	// RuntimeMS is the wall-clock solve time — the one nondeterministic
	// field, excluded from the byte-determinism contract.
	RuntimeMS float64 `json:"runtime_ms"`
	// Err records a per-cell failure (solver refusal, infeasible
	// instance). A failed cell does not abort the sweep.
	Err string `json:"error,omitempty"`
	// Stats carries the solver's diagnostics (snake_case keys, sorted by
	// encoding/json on marshal).
	Stats map[string]float64 `json:"stats,omitempty"`
	// Solution is the in-memory result for programmatic consumers
	// (retained only under SweepOptions.KeepSolutions); never serialized.
	Solution *Solution `json:"-"`
}

// SweepOptions configures a Sweep run. The zero value runs the grid on
// GOMAXPROCS workers with a private Engine over the package-level registry
// and per-scenario lower bounds.
type SweepOptions struct {
	// Workers bounds concurrent cell solves; <= 0 selects GOMAXPROCS. The
	// worker count is purely a wall-clock lever: results, JSONL bodies and
	// aggregates are identical for every value (runtime fields aside).
	Workers int
	// Engine dispatches the cells. Nil builds a private engine for the run
	// (with Registry below); passing a shared engine lets a sweep reuse
	// compiled instances and pooled solver scratch warmed by earlier
	// requests — `dcnflow sweep` passes the CLI's shared engine. Results
	// are identical either way.
	Engine *Engine
	// Registry resolves solver names when Engine is nil (an explicit
	// Engine brings its own registry); nil selects the package registry.
	// Note LoadSweep/Validate check names against the package registry, so
	// a custom registry is for curating options, not for unregistered
	// names.
	Registry *Registry
	// Options is applied to every cell's solver construction before the
	// cell's own WithSeed, e.g. WithSolverOptions to cap Frank–Wolfe
	// iterations sweep-wide.
	Options []SolveOption
	// SkipLB disables the shared per-scenario fractional lower bound.
	// With it set, LB/LBRatio are populated only for cells whose solver
	// reports its own bound.
	SkipLB bool
	// KeepSolutions retains each cell's *Solution (schedule included) in
	// the result — memory-hungry on large grids, handy for conformance
	// harnesses.
	KeepSolutions bool
	// OnCell, when non-nil, observes finished cells serialized and in cell
	// order — the streaming hook the CLI's JSONL writer and progress
	// printer attach to.
	OnCell func(SweepCellResult)
	// Fitness, when non-nil, re-scores every solved cell through the
	// discrete-event simulator and populates the cell's Fitness, Misses and
	// SlackP99 fields plus the aggregate's mean-fitness column
	// (`dcnflow sweep -fit-energy/-fit-miss/-fit-slack`). The scoring is
	// deterministic, so the byte-determinism contract is unchanged.
	Fitness *Fitness
}

// SweepResult is a completed sweep: per-cell results in expansion order
// plus the spec that produced them.
type SweepResult struct {
	Spec  *SweepSpec
	Cells []SweepCellResult
}

// SweepAggregate is one per-solver row of the aggregate table.
type SweepAggregate struct {
	// Solver is the registered solver name.
	Solver string
	// Cells and Errors count the solver's grid cells and failed cells.
	Cells, Errors int
	// MeanRatio and P95Ratio summarise Energy/LB over the solver's
	// error-free cells with a positive LB (nearest-rank p95).
	MeanRatio, P95Ratio float64
	// MeanFitness summarises the weighted fitness over error-free cells;
	// zero when the sweep ran without SweepOptions.Fitness.
	MeanFitness float64
	// MeanMS and TotalMS summarise wall-clock solve time (excluded from
	// the determinism contract).
	MeanMS, TotalMS float64
}

// Aggregate reduces the sweep to one row per solver, in the spec's solver
// order. Runtime columns aside, the aggregate is deterministic.
func (r *SweepResult) Aggregate() []SweepAggregate {
	bySolver := make(map[string]*SweepAggregate)
	var order []string
	for _, name := range r.Spec.Solvers {
		if _, ok := bySolver[name]; !ok {
			bySolver[name] = &SweepAggregate{Solver: name}
			order = append(order, name)
		}
	}
	ratios := make(map[string][]float64)
	fits := make(map[string][]float64)
	for _, c := range r.Cells {
		agg, ok := bySolver[c.Solver]
		if !ok {
			continue
		}
		agg.Cells++
		if c.Err != "" {
			agg.Errors++
			continue
		}
		agg.TotalMS += c.RuntimeMS
		if c.LBRatio > 0 {
			ratios[c.Solver] = append(ratios[c.Solver], c.LBRatio)
		}
		fits[c.Solver] = append(fits[c.Solver], c.Fitness)
	}
	out := make([]SweepAggregate, 0, len(order))
	for _, name := range order {
		agg := bySolver[name]
		agg.MeanRatio = stats.Mean(ratios[name])
		agg.P95Ratio = stats.Percentile(ratios[name], 0.95)
		agg.MeanFitness = stats.Mean(fits[name])
		if done := agg.Cells - agg.Errors; done > 0 {
			agg.MeanMS = agg.TotalMS / float64(done)
		}
		out = append(out, *agg)
	}
	return out
}

// AggregateTable renders the per-solver aggregate as an aligned text table.
func (r *SweepResult) AggregateTable() string {
	tb := stats.NewTable("solver", "cells", "errors", "mean E/LB", "p95 E/LB", "mean fit", "mean ms", "total ms")
	for _, a := range r.Aggregate() {
		tb.AddRow(a.Solver, a.Cells, a.Errors, a.MeanRatio, a.P95Ratio, a.MeanFitness, a.MeanMS, a.TotalMS)
	}
	return tb.String()
}

// WriteJSONL writes one marshalled SweepCellResult per line, in cell order
// — the same bytes the engine streams through SweepOptions.OnCell.
func (r *SweepResult) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, c := range r.Cells {
		if err := enc.Encode(c); err != nil {
			return fmt.Errorf("dcnflow: encoding sweep cell %d: %w", c.Cell, err)
		}
	}
	return nil
}

// Sweep expands the spec's grid and executes every cell on a bounded worker
// pool, dispatching each through the shared Engine — the root-level facade
// of the sweep engine. Per-scenario instances, lower bounds, compiled
// topologies and pooled solver scratch are all shared through the Engine's
// caches (cells differing only in solver hit the same CompiledInstance),
// replacing the bespoke per-worker solver cache and sync.Once instance
// groups the sweep once carried. Per-cell failures are recorded in the
// cell's Err field and do not abort the run; the returned error is non-nil
// only for an invalid spec or a cancelled context (the pool winds down
// within one in-flight cell per worker and the partial result is
// discarded).
//
// Determinism contract: Cells, their JSONL encoding and Aggregate (runtime
// fields aside) are byte-identical for every Workers value — cells are
// collected and streamed in expansion order, every seed is derived from the
// spec, and the Engine's caches never change results (its own contract).
func Sweep(ctx context.Context, spec *SweepSpec, opts SweepOptions) (*SweepResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	eng := opts.Engine
	if eng == nil {
		eng = NewEngine(EngineOptions{Registry: opts.Registry})
	}
	cells := spec.Cells()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	var emit func(int, SweepCellResult)
	if opts.OnCell != nil {
		emit = func(_ int, r SweepCellResult) { opts.OnCell(r) }
	}
	results, err := sweep.Map(ctx, len(cells), workers,
		func(ctx context.Context, i, _ int) (SweepCellResult, error) {
			cell := &cells[i]
			res := SweepCellResult{
				Cell:      cell.Index,
				Scenario:  cell.Scenario.Name,
				Topology:  cell.TopologyLabel,
				Workload:  cell.WorkloadLabel,
				Tightness: cell.Tightness,
				Seed:      cell.Seed,
				Solver:    cell.Solver,
			}
			// The instance is resolved first so a scenario build failure is
			// reported as itself, not disguised as a bound or solve error.
			// Cells of one scenario group share the cached build.
			if _, err := eng.Instance(&cell.Scenario); err != nil {
				res.Err = err.Error()
				return res, nil
			}
			var lb float64
			if !opts.SkipLB {
				// The shared bound reuses the cell-wide solver options (so a
				// sweep-wide Frank–Wolfe iteration cap applies to it too) and
				// is memoised per scenario group on the Engine.
				var err error
				lb, err = eng.LowerBound(ctx, &cell.Scenario, opts.Options...)
				if err != nil {
					if ctx.Err() != nil {
						return res, ctx.Err()
					}
					// A failed shared bound is a per-scenario failure, not
					// something to paper over with the solver's own bound —
					// otherwise the row would silently mix normalizers and
					// look exactly like a SkipLB run.
					res.Err = fmt.Sprintf("scenario lower bound: %v", err)
					return res, nil
				}
			}

			start := time.Now()
			// The engine applies WithSeed(cell.Scenario.Seed) after the
			// sweep-wide options — the cell's seed axis value, baked into
			// the resolved scenario by Cells().
			r := eng.Solve(ctx, Request{
				Scenario: &cell.Scenario,
				Solver:   cell.Solver,
				Options:  opts.Options,
			})
			res.RuntimeMS = float64(time.Since(start)) / float64(time.Millisecond)
			if r.Err != nil {
				// Cancellation aborts the sweep; any other failure is a
				// per-cell outcome worth recording, not a reason to drop
				// the rest of the grid.
				if ctx.Err() != nil && errors.Is(r.Err, ctx.Err()) {
					return res, r.Err
				}
				res.Err = r.Err.Error()
				return res, nil
			}
			sol := r.Solution
			res.Energy = sol.Energy
			res.LB = lb
			if opts.SkipLB {
				res.LB = sol.LowerBound
			}
			if res.LB > 0 {
				res.LBRatio = res.Energy / res.LB
			}
			res.Stats = sol.Stats
			if opts.Fitness != nil && sol.Schedule != nil {
				// Re-score the schedule through the simulator and collapse to
				// the weighted scalar. The instance is the cached scenario
				// build resolved above.
				inst, err := eng.Instance(&cell.Scenario)
				if err != nil {
					res.Err = fmt.Sprintf("fitness scoring: %v", err)
					return res, nil
				}
				simRes, err := Simulate(inst.Graph(), inst.Flows(), sol.Schedule, inst.Model(), SimOptions{})
				if err != nil {
					res.Err = fmt.Sprintf("fitness scoring: %v", err)
					return res, nil
				}
				comp := decision.SimComponents(inst.Flows(), simRes)
				res.Misses = comp.Misses
				res.SlackP99 = comp.SlackP99
				res.Fitness = opts.Fitness.Score(comp)
			}
			if opts.KeepSolutions {
				res.Solution = sol
			}
			return res, nil
		},
		emit)
	if err != nil {
		return nil, fmt.Errorf("dcnflow: sweep: %w", err)
	}
	return &SweepResult{Spec: spec, Cells: results}, nil
}
