package dcnflow_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"dcnflow"
)

// serveScenario is a tiny scenario every serve test shares.
func serveScenario() dcnflow.ScenarioSpec {
	return dcnflow.ScenarioSpec{
		Name:     "serve-test",
		Topology: dcnflow.TopologySpec{Kind: "line", K: 3, Capacity: 100},
		Workload: dcnflow.WorkloadSpec{Kind: "shuffle", Hosts: 2, Release: 0, Deadline: 6, Size: 2},
		Model:    dcnflow.ModelSpec{Mu: 1, Alpha: 2, C: 100},
		Seed:     1,
	}
}

func newServeServer(t *testing.T, opts dcnflow.ServeOptions) (*httptest.Server, *dcnflow.Client) {
	t.Helper()
	eng := dcnflow.NewEngine(dcnflow.EngineOptions{})
	srv := httptest.NewServer(dcnflow.NewServeHandler(eng, opts))
	t.Cleanup(srv.Close)
	return srv, &dcnflow.Client{BaseURL: srv.URL, HTTPClient: srv.Client()}
}

// TestServeSolveMatchesDirect: a served solve equals the direct registry
// solve of the same spec (energy, bound, stats), and the second identical
// request is a cache hit.
func TestServeSolveMatchesDirect(t *testing.T) {
	_, client := newServeServer(t, dcnflow.ServeOptions{})
	spec := serveScenario()

	inst, err := spec.Instance()
	if err != nil {
		t.Fatal(err)
	}
	want, err := dcnflow.Solve(context.Background(), dcnflow.SolverDCFSR, inst, dcnflow.WithSeed(spec.Seed))
	if err != nil {
		t.Fatal(err)
	}

	got, err := client.Solve(context.Background(), dcnflow.ServeRequest{Scenario: spec, Solver: dcnflow.SolverDCFSR})
	if err != nil {
		t.Fatal(err)
	}
	if got.Energy != want.Energy || got.LowerBound != want.LowerBound {
		t.Fatalf("served solve diverged: (%v, %v) vs direct (%v, %v)",
			got.Energy, got.LowerBound, want.Energy, want.LowerBound)
	}
	if got.Solver != dcnflow.SolverDCFSR || got.Scenario != spec.Name {
		t.Errorf("response echoes %q/%q, want %q/%q", got.Scenario, got.Solver, spec.Name, dcnflow.SolverDCFSR)
	}
	again, err := client.Solve(context.Background(), dcnflow.ServeRequest{Scenario: spec, Solver: dcnflow.SolverDCFSR})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Error("second identical request missed the warm cache")
	}
	if again.Energy != want.Energy {
		t.Errorf("warm solve diverged: %v vs %v", again.Energy, want.Energy)
	}
}

// TestServeBatchAndHealth: /v1/batch answers per-item results in request
// order (failures inline), and /healthz reports the cache counters.
func TestServeBatchAndHealth(t *testing.T) {
	_, client := newServeServer(t, dcnflow.ServeOptions{})
	spec := serveScenario()
	reqs := []dcnflow.ServeRequest{
		{Scenario: spec, Solver: dcnflow.SolverSPMCF},
		{Scenario: spec, Solver: "no-such-solver"},
		{Scenario: spec, Solver: dcnflow.SolverGreedyOnline},
	}
	results, err := client.SolveBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("batch answered %d results", len(results))
	}
	if results[0].Error != "" || results[2].Error != "" {
		t.Fatalf("valid batch items failed: %q / %q", results[0].Error, results[2].Error)
	}
	if results[1].Error == "" {
		t.Fatal("unknown solver item did not fail")
	}
	if results[0].Solver != dcnflow.SolverSPMCF || results[2].Solver != dcnflow.SolverGreedyOnline {
		t.Fatal("batch results arrived out of request order")
	}
	if results[0].Energy <= 0 || results[2].Energy <= 0 {
		t.Fatal("batch items carry no energy")
	}

	h, err := client.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("health status %q", h.Status)
	}
	if len(h.Solvers) != len(dcnflow.SolverNames()) {
		t.Fatalf("health lists %d solvers, want %d", len(h.Solvers), len(dcnflow.SolverNames()))
	}
	if h.Cache.Misses == 0 {
		t.Fatalf("health cache counters empty: %+v", h.Cache)
	}
}

// TestServeRejectsBadRequests: malformed bodies and disallowed solvers map
// to the documented statuses.
func TestServeRejectsBadRequests(t *testing.T) {
	srv, client := newServeServer(t, dcnflow.ServeOptions{Solvers: []string{dcnflow.SolverSPMCF}})
	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	for name, tc := range map[string]struct {
		path, body string
		status     int
	}{
		"garbage":        {"/v1/solve", "{not json", http.StatusBadRequest},
		"unknown field":  {"/v1/solve", `{"bogus": 1}`, http.StatusBadRequest},
		"trailing data":  {"/v1/solve", `{} {}`, http.StatusBadRequest},
		"invalid spec":   {"/v1/solve", `{"scenario": {"topology": {"kind": "torus"}}, "solver": "dcfsr"}`, http.StatusBadRequest},
		"empty batch":    {"/v1/batch", `{"requests": []}`, http.StatusBadRequest},
		"batch not json": {"/v1/batch", `nope`, http.StatusBadRequest},
	} {
		if resp := post(tc.path, tc.body); resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, tc.status)
		}
	}

	// A valid request naming a solver outside the allowlist is a 422 with
	// the allowlist in the message.
	var buf bytes.Buffer
	req := dcnflow.ServeRequest{Scenario: serveScenario(), Solver: dcnflow.SolverDCFSR}
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatal(err)
	}
	resp := post("/v1/solve", buf.String())
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("disallowed solver: status %d, want 422", resp.StatusCode)
	}
	if _, err := client.Solve(context.Background(), req); err == nil ||
		!strings.Contains(err.Error(), "not served here") {
		t.Fatalf("client did not surface the allowlist error: %v", err)
	}
}

// TestServeTimeout: a request whose timeout_ms cannot fit the solve
// answers 504 and the engine returns no partial result.
func TestServeTimeout(t *testing.T) {
	srv, _ := newServeServer(t, dcnflow.ServeOptions{})
	spec := dcnflow.ScenarioSpec{
		Topology: dcnflow.TopologySpec{Kind: "fattree", K: 8, Capacity: 1000},
		Workload: dcnflow.WorkloadSpec{Kind: "uniform", N: 60, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3},
		Model:    dcnflow.ModelSpec{Mu: 1, Alpha: 2, C: 1000},
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(dcnflow.ServeRequest{Scenario: spec, Solver: dcnflow.SolverDCFSR, TimeoutMS: 1}); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/v1/solve", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var body dcnflow.ServeResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error == "" || body.Energy != 0 {
		t.Fatalf("timeout reply carries a partial result: %+v", body)
	}
}

// TestServeRequestCanonicalRoundTrip pins the canonical byte encoding the
// fuzz target relies on.
func TestServeRequestCanonicalRoundTrip(t *testing.T) {
	req := &dcnflow.ServeRequest{Scenario: serveScenario(), Solver: dcnflow.SolverSPMCF, TimeoutMS: 2500}
	var buf bytes.Buffer
	if err := dcnflow.EncodeServeRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	back, err := dcnflow.DecodeServeRequest(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if *back != *req {
		t.Fatalf("round-trip changed the request: %+v vs %+v", back, req)
	}
	var again bytes.Buffer
	if err := dcnflow.EncodeServeRequest(&again, back); err != nil {
		t.Fatal(err)
	}
	if again.String() != first {
		t.Fatal("canonical encoding is not a fixed point")
	}
}

// FuzzServeRequest asserts DecodeServeRequest is total, mirroring
// FuzzLoadScenario: arbitrary input either yields a request that validates
// and round-trips canonically, or an error — never a panic, never a
// silently invalid request.
func FuzzServeRequest(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"scenario": {"topology": {"kind": "line", "k": 3, "capacity": 100}, "workload": {"kind": "shuffle", "hosts": 2, "deadline": 6, "size": 2}, "model": {"mu": 1, "alpha": 2}}, "solver": "dcfsr"}`,
		`{"scenario": {"topology": {"kind": "fattree", "k": 4, "capacity": 1000}, "workload": {"kind": "uniform", "n": 4, "t1": 10, "size_mean": 2}, "model": {"mu": 1, "alpha": 2}}, "solver": "sp-mcf", "timeout_ms": 500}`,
		`{"solver": "dcfsr"}`,
		`{"scenario": null, "solver": "dcfsr"}`,
		`{"bogus": true}`,
		`[1, 2]`,
		"null",
		"",
	}
	if data, err := os.ReadFile("testdata/golden_scenario.json"); err == nil {
		seeds = append(seeds, `{"scenario": `+strings.TrimSpace(string(data))+`, "solver": "dcfsr"}`)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		req, err := dcnflow.DecodeServeRequest(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := req.Validate(); verr != nil {
			t.Fatalf("DecodeServeRequest accepted a request that fails Validate: %v", verr)
		}
		var buf bytes.Buffer
		if err := dcnflow.EncodeServeRequest(&buf, req); err != nil {
			t.Fatalf("accepted request does not encode: %v", err)
		}
		first := buf.String()
		back, err := dcnflow.DecodeServeRequest(strings.NewReader(first))
		if err != nil {
			t.Fatalf("encoded request does not decode back: %v", err)
		}
		if *back != *req {
			t.Fatalf("round-trip changed the request: %+v != %+v", back, req)
		}
		var again bytes.Buffer
		if err := dcnflow.EncodeServeRequest(&again, back); err != nil {
			t.Fatal(err)
		}
		if again.String() != first {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}

// TestServeHandlerConcurrent hammers one handler from many goroutines
// (mixed solve/batch/health) — run under -race by make test-race-online.
func TestServeHandlerConcurrent(t *testing.T) {
	_, client := newServeServer(t, dcnflow.ServeOptions{MaxTimeout: 30 * time.Second})
	spec := serveScenario()
	want, err := client.Solve(context.Background(), dcnflow.ServeRequest{Scenario: spec, Solver: dcnflow.SolverSPMCF})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 6)
	for w := 0; w < 6; w++ {
		go func(w int) {
			for i := 0; i < 4; i++ {
				switch w % 3 {
				case 0:
					got, err := client.Solve(context.Background(), dcnflow.ServeRequest{Scenario: spec, Solver: dcnflow.SolverSPMCF})
					if err == nil && got.Energy != want.Energy {
						err = errEnergyDrift
					}
					if err != nil {
						done <- err
						return
					}
				case 1:
					if _, err := client.SolveBatch(context.Background(), []dcnflow.ServeRequest{
						{Scenario: spec, Solver: dcnflow.SolverGreedyOnline},
						{Scenario: spec, Solver: dcnflow.SolverSPMCF},
					}); err != nil {
						done <- err
						return
					}
				default:
					if _, err := client.Health(context.Background()); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 6; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type driftErr string

func (e driftErr) Error() string { return string(e) }

var errEnergyDrift = driftErr("concurrent served solve diverged from reference energy")
