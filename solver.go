package dcnflow

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrUnknownSolver reports a solver name absent from the registry.
var ErrUnknownSolver = errors.New("dcnflow: unknown solver")

// Solution is the common outcome every registered Solver returns, so
// algorithms and baselines are compared uniformly: one schedule, one energy
// figure, the solver's own lower bound when it produces one, and a flat bag
// of per-solver diagnostics.
type Solution struct {
	// Solver is the registered name that produced this solution.
	Solver string
	// Schedule is the complete per-flow schedule (paths + rate functions).
	Schedule *Schedule
	// Energy is the solver's accounted total energy. For every solver this
	// equals Schedule.EnergyTotal(model) except "always-on", which charges
	// idle power for every link in the network whether used or not.
	Energy float64
	// LowerBound is the fractional relaxation bound when the solver computes
	// one (the DCFSR family); zero otherwise.
	LowerBound float64
	// Stats holds per-solver diagnostics (iteration counts, rounding
	// attempts, admission tallies, ...) under stable snake_case keys.
	Stats map[string]float64
}

// Solver is one algorithm of the unified Scenario/Solver API: it consumes a
// validated Instance under a context and produces a Solution. Solvers are
// configured at construction (Registry.New + functional options) and must
// be safe to call Solve on repeatedly.
//
// Cancellation contract: when ctx ends mid-solve, Solve returns an error
// wrapping ctx.Err() — never a partial Solution — within one unit of
// algorithm-specific work (one Frank–Wolfe iteration for the relaxation
// solvers, one epoch re-solve for rolling, one admission for the greedy,
// one path assignment for exact).
type Solver interface {
	// Name returns the registered solver name.
	Name() string
	// Solve runs the algorithm on one instance.
	Solve(ctx context.Context, in *Instance) (*Solution, error)
}

// SolverConfig is the resolved configuration a SolverFactory receives; it
// is assembled by applying SolveOptions in order (later options win).
type SolverConfig struct {
	// Seed drives randomized rounding and randomized routing (ECMP).
	Seed int64
	// DCFSR tunes the Random-Schedule pipeline (relaxation iterations,
	// rounding attempts, warm starts, progress callback); used by the
	// "dcfsr" and "rolling-online" solvers.
	DCFSR DCFSROptions
	// Online tunes the marginal-cost greedy ("greedy-online").
	Online OnlineOptions
	// Rolling tunes the rolling-horizon scheduler ("rolling-online"); its
	// embedded DCFSR field is overwritten by the DCFSR field above at solve
	// time, so the relaxation knobs have one home.
	Rolling RollingOptions
	// Exact bounds the brute-force enumeration ("exact").
	Exact ExactOptions
	// ECMPWidth is the equal-cost path fan-out of "ecmp-mcf"; default 8.
	ECMPWidth int

	// scratch is the Engine's pooled per-solver scratch registry, set only
	// by engine-dispatched solves (see withScratch). The built-in
	// relaxation factories draw reusable F-MCF solvers from it per solve;
	// nil (every non-engine construction) keeps the historical per-call
	// construction. Never affects results.
	scratch *enginePools
}

// SolveOption configures a solver at construction.
type SolveOption func(*SolverConfig)

// WithSeed sets the randomization seed (rounding draws, ECMP path picks).
func WithSeed(seed int64) SolveOption {
	return func(c *SolverConfig) {
		c.Seed = seed
		c.DCFSR.Seed = seed
	}
}

// WithSolverOptions sets the Frank–Wolfe relaxation options of the
// DCFSR-family solvers (iteration cap, tolerance, cost kind, ...).
func WithSolverOptions(o SolverOptions) SolveOption {
	return func(c *SolverConfig) { c.DCFSR.Solver = o }
}

// WithDCFSROptions replaces the full Random-Schedule option block
// (including its Seed — apply WithSeed afterwards to override it).
func WithDCFSROptions(o DCFSROptions) SolveOption {
	return func(c *SolverConfig) {
		c.DCFSR = o
		c.Seed = o.Seed
	}
}

// WithReplanPolicy sets the rolling-horizon re-plan trigger.
func WithReplanPolicy(p ReplanPolicy) SolveOption {
	return func(c *SolverConfig) { c.Rolling.Policy = p }
}

// WithOnlineOptions sets the marginal-cost greedy options.
func WithOnlineOptions(o OnlineOptions) SolveOption {
	return func(c *SolverConfig) { c.Online = o }
}

// WithRollingOptions replaces the full rolling-horizon option block,
// including its embedded DCFSR options.
func WithRollingOptions(o RollingOptions) SolveOption {
	return func(c *SolverConfig) {
		c.Rolling = o
		c.DCFSR = o.DCFSR
		c.Seed = o.DCFSR.Seed
	}
}

// WithExactOptions bounds the brute-force enumeration of "exact".
func WithExactOptions(o ExactOptions) SolveOption {
	return func(c *SolverConfig) { c.Exact = o }
}

// WithECMPWidth sets the equal-cost multi-path fan-out of "ecmp-mcf".
func WithECMPWidth(k int) SolveOption {
	return func(c *SolverConfig) { c.ECMPWidth = k }
}

// WithProgress installs a progress observer: per-interval relaxation events
// and, for "rolling-online", per-epoch re-plan events.
func WithProgress(fn ProgressFunc) SolveOption {
	return func(c *SolverConfig) { c.DCFSR.Progress = fn }
}

// SolverFactory builds a configured Solver from a resolved SolverConfig.
type SolverFactory func(cfg SolverConfig) (Solver, error)

// Registry maps solver names to factories. The package-level registry
// (Register/NewSolver/SolverNames/Solve) ships with the eight built-in
// families; construct a private Registry to curate a different set.
// A Registry is safe for concurrent use.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]SolverFactory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]SolverFactory)}
}

// Register adds a named factory; empty names, nil factories and duplicates
// are rejected.
func (r *Registry) Register(name string, f SolverFactory) error {
	if strings.TrimSpace(name) == "" || name != strings.TrimSpace(name) {
		return fmt.Errorf("dcnflow: invalid solver name %q", name)
	}
	if f == nil {
		return fmt.Errorf("dcnflow: nil factory for solver %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[name]; dup {
		return fmt.Errorf("dcnflow: solver %q already registered", name)
	}
	r.factories[name] = f
	return nil
}

// Names returns the registered solver names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.factories))
	for name := range r.factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// New constructs a configured solver by name.
func (r *Registry) New(name string, opts ...SolveOption) (Solver, error) {
	r.mu.RLock()
	f, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %s)", ErrUnknownSolver, name, strings.Join(r.Names(), ", "))
	}
	var cfg SolverConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return f(cfg)
}

// Solve constructs the named solver and runs it on one instance — the
// one-call entry point of the Scenario/Solver API.
func (r *Registry) Solve(ctx context.Context, name string, in *Instance, opts ...SolveOption) (*Solution, error) {
	s, err := r.New(name, opts...)
	if err != nil {
		return nil, err
	}
	return s.Solve(ctx, in)
}

// defaultRegistry holds the built-in solver families (populated by
// registerBuiltins in solvers.go).
var defaultRegistry = NewRegistry()

// Register adds a solver factory to the package-level registry.
func Register(name string, f SolverFactory) error { return defaultRegistry.Register(name, f) }

// SolverNames lists the package-level registry, sorted.
func SolverNames() []string { return defaultRegistry.Names() }

// NewSolver constructs a configured solver from the package-level registry.
func NewSolver(name string, opts ...SolveOption) (Solver, error) {
	return defaultRegistry.New(name, opts...)
}

// Solve runs a package-level registered solver on one instance:
//
//	inst, _ := dcnflow.NewInstance(g, flows, model)
//	sol, err := dcnflow.Solve(ctx, "dcfsr", inst, dcnflow.WithSeed(1))
func Solve(ctx context.Context, solver string, in *Instance, opts ...SolveOption) (*Solution, error) {
	return defaultRegistry.Solve(ctx, solver, in, opts...)
}
