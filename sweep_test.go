package dcnflow_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"dcnflow"
)

// testSweepSpec is the shared 3-topology × 4-solver × 3-seed grid (36
// cells) of the determinism regression — big enough to keep 8 workers busy
// and cover randomized (ecmp-mcf, dcfsr) and deterministic solver families.
func testSweepSpec() *dcnflow.SweepSpec {
	return &dcnflow.SweepSpec{
		Name: "determinism-regression",
		Topologies: []dcnflow.TopologySpec{
			{Kind: "line", K: 5, Capacity: 1e6},
			{Kind: "star", K: 5, Capacity: 1e6},
			{Kind: "leafspine", Spines: 2, Leaves: 2, HostsPerLeaf: 2, Capacity: 1e6},
		},
		Workloads: []dcnflow.WorkloadSpec{
			{Kind: "uniform", N: 6, T0: 1, T1: 40, SizeMean: 5, SizeStddev: 2},
		},
		Model:   dcnflow.ModelSpec{Mu: 1, Alpha: 2, C: 1e6},
		Seeds:   []int64{1, 2, 3},
		Solvers: []string{"dcfsr", "sp-mcf", "ecmp-mcf", "always-on"},
	}
}

// runtimeMS matches the one nondeterministic JSONL field; the determinism
// tests normalise it away before comparing bytes.
var runtimeMS = regexp.MustCompile(`"runtime_ms":[0-9eE.+-]+`)

func normalizeJSONL(b []byte) string {
	return runtimeMS.ReplaceAllString(string(b), `"runtime_ms":0`)
}

// TestSweepDeterministicAcrossWorkerCounts is the engine's headline
// contract (and an ISSUE acceptance criterion): a 36-cell grid solved at
// -workers 1 and -workers 8 produces identical JSONL bodies (modulo the
// runtime field), an identical streamed cell order, and identical
// aggregates (runtime columns zeroed).
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := testSweepSpec()
	iters := dcnflow.WithSolverOptions(dcnflow.SolverOptions{MaxIters: 20})
	run := func(workers int) (jsonl string, streamed []int, aggs []dcnflow.SweepAggregate) {
		t.Helper()
		res, err := dcnflow.Sweep(context.Background(), spec, dcnflow.SweepOptions{
			Workers: workers,
			Options: []dcnflow.SolveOption{iters},
			OnCell:  func(c dcnflow.SweepCellResult) { streamed = append(streamed, c.Cell) },
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Cells) != spec.CellCount() {
			t.Fatalf("workers=%d: %d cells, want %d", workers, len(res.Cells), spec.CellCount())
		}
		for _, c := range res.Cells {
			if c.Err != "" {
				t.Fatalf("workers=%d: cell %d (%s/%s) failed: %s", workers, c.Cell, c.Scenario, c.Solver, c.Err)
			}
			// The shared LB is the Fig. 2 normalizer: scheduling-optimal
			// solvers may dip slightly below it, but a ratio far from 1
			// means the plumbing (shared instance, shared bound) broke.
			if c.LBRatio < 0.5 {
				t.Fatalf("workers=%d: cell %d energy %v implausibly far below normalizer %v", workers, c.Cell, c.Energy, c.LB)
			}
		}
		var buf bytes.Buffer
		if err := res.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		aggs = res.Aggregate()
		for i := range aggs {
			aggs[i].MeanMS, aggs[i].TotalMS = 0, 0
		}
		return normalizeJSONL(buf.Bytes()), streamed, aggs
	}
	jsonl1, streamed1, aggs1 := run(1)
	jsonl8, streamed8, aggs8 := run(8)
	if jsonl1 != jsonl8 {
		t.Errorf("JSONL bodies differ between workers 1 and 8:\n-- workers=1 --\n%s\n-- workers=8 --\n%s", jsonl1, jsonl8)
	}
	if !reflect.DeepEqual(streamed1, streamed8) {
		t.Errorf("streamed cell order differs: %v vs %v", streamed1, streamed8)
	}
	for i, c := range streamed1 {
		if c != i {
			t.Fatalf("streamed order not the expansion order: position %d got cell %d", i, c)
		}
	}
	if !reflect.DeepEqual(aggs1, aggs8) {
		t.Errorf("aggregates differ:\nworkers=1: %+v\nworkers=8: %+v", aggs1, aggs8)
	}
	if len(aggs1) != 4 {
		t.Fatalf("aggregate rows = %d, want one per solver", len(aggs1))
	}
	table := (&dcnflow.SweepResult{Spec: spec}).AggregateTable()
	if !strings.Contains(table, "mean E/LB") {
		t.Fatalf("aggregate table missing header:\n%s", table)
	}
}

// TestSweepTightnessAxis: tightening deadlines must not loosen the
// energy-vs-bound picture arbitrarily — tighter windows force higher rates,
// so the scenario lower bound must strictly grow as tightness shrinks.
func TestSweepTightnessAxis(t *testing.T) {
	spec := &dcnflow.SweepSpec{
		Topologies: []dcnflow.TopologySpec{{Kind: "line", K: 4, Capacity: 1e6}},
		Workloads:  []dcnflow.WorkloadSpec{{Kind: "uniform", N: 5, T0: 1, T1: 30, SizeMean: 4, SizeStddev: 1}},
		Model:      dcnflow.ModelSpec{Mu: 1, Alpha: 2, C: 1e6},
		Tightness:  []float64{1, 0.5},
		Solvers:    []string{"sp-mcf"},
	}
	res, err := dcnflow.Sweep(context.Background(), spec, dcnflow.SweepOptions{
		Workers: 2,
		Options: []dcnflow.SolveOption{dcnflow.WithSolverOptions(dcnflow.SolverOptions{MaxIters: 20})},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(res.Cells))
	}
	loose, tight := res.Cells[0], res.Cells[1]
	if loose.Tightness != 1 || tight.Tightness != 0.5 {
		t.Fatalf("tightness coordinates wrong: %v, %v", loose.Tightness, tight.Tightness)
	}
	if tight.LB <= loose.LB {
		t.Errorf("halving every deadline window did not raise the lower bound: %v -> %v", loose.LB, tight.LB)
	}
	if tight.Energy <= loose.Energy {
		t.Errorf("halving every deadline window did not raise the schedule energy: %v -> %v", loose.Energy, tight.Energy)
	}
}

// TestSweepCancellation: a cancelled context aborts the run with the
// context error instead of a partial result — the cancellation-safe pooling
// half of the acceptance criterion.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := dcnflow.Sweep(ctx, testSweepSpec(), dcnflow.SweepOptions{Workers: 4})
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned (%v, %v), want (nil, context.Canceled)", res, err)
	}
}

// TestSweepPerCellErrorsDoNotAbort: a solver that refuses an instance (the
// exact enumerator past its assignment bound) is recorded in that cell and
// counted in the aggregate; the rest of the grid still completes.
func TestSweepPerCellErrorsDoNotAbort(t *testing.T) {
	spec := &dcnflow.SweepSpec{
		Topologies: []dcnflow.TopologySpec{{Kind: "fattree", K: 4, Capacity: 1e6}},
		Workloads:  []dcnflow.WorkloadSpec{{Kind: "uniform", N: 12, T0: 1, T1: 30, SizeMean: 4, SizeStddev: 1}},
		Model:      dcnflow.ModelSpec{Mu: 1, Alpha: 2, C: 1e6},
		Solvers:    []string{"exact", "sp-mcf"},
	}
	res, err := dcnflow.Sweep(context.Background(), spec, dcnflow.SweepOptions{
		Workers: 2,
		Options: []dcnflow.SolveOption{
			dcnflow.WithSolverOptions(dcnflow.SolverOptions{MaxIters: 10}),
			// 12 flows with up to 4 candidate paths each overflow a bound
			// of 16 assignments, so the exact cell must fail.
			dcnflow.WithExactOptions(dcnflow.ExactOptions{MaxAssignments: 16}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells[0].Err == "" {
		t.Error("exact cell unexpectedly succeeded past its assignment bound")
	}
	if res.Cells[1].Err != "" || res.Cells[1].Energy <= 0 {
		t.Errorf("sp-mcf cell should have completed: %+v", res.Cells[1])
	}
	aggs := res.Aggregate()
	if aggs[0].Errors != 1 || aggs[1].Errors != 0 {
		t.Errorf("aggregate error counts wrong: %+v", aggs)
	}
}

// TestLoadSweepRejectsMalformed guards the strict-loading error surface,
// mirroring TestLoadScenarioRejectsMalformed.
func TestLoadSweepRejectsMalformed(t *testing.T) {
	valid := `{
  "topologies": [{"kind": "line", "k": 3, "capacity": 10}],
  "workloads": [{"kind": "shuffle", "hosts": 2, "deadline": 5, "size": 1}],
  "model": {"mu": 1, "alpha": 2},
  "solvers": ["sp-mcf"]
}`
	if _, err := dcnflow.LoadSweep(strings.NewReader(valid)); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct{ name, input, wantMsg string }{
		{"not json", `{{`, ""},
		{"unknown field", strings.Replace(valid, `"model"`, `"bogus": 1, "model"`, 1), "bogus"},
		{"no topologies", strings.Replace(valid, `[{"kind": "line", "k": 3, "capacity": 10}]`, `[]`, 1), "topologies"},
		{"bad topology", strings.Replace(valid, `"kind": "line"`, `"kind": "torus"`, 1), "topology kind"},
		{"no workloads", strings.Replace(valid, `[{"kind": "shuffle", "hosts": 2, "deadline": 5, "size": 1}]`, `[]`, 1), "workloads"},
		{"bad workload", strings.Replace(valid, `"hosts": 2`, `"hosts": 1`, 1), "hosts"},
		{"bad model", strings.Replace(valid, `"mu": 1`, `"mu": -1`, 1), "model"},
		{"bad tightness", strings.Replace(valid, `"solvers"`, `"tightness": [1, -0.5], "solvers"`, 1), "tightness"},
		{"no solvers", strings.Replace(valid, `["sp-mcf"]`, `[]`, 1), "solvers"},
		{"unknown solver", strings.Replace(valid, `"sp-mcf"`, `"simplex"`, 1), "simplex"},
		{"trailing garbage", valid + ` {"again": true}`, "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := dcnflow.LoadSweep(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("malformed spec accepted: %s", tc.input)
			}
			if !errors.Is(err, dcnflow.ErrBadSweep) {
				t.Errorf("error does not wrap ErrBadSweep: %v", err)
			}
			if tc.wantMsg != "" && !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}

// TestSweepCellsExpansion pins the fixed nested-loop expansion order
// (solvers innermost) and the per-cell seed/tightness overrides.
func TestSweepCellsExpansion(t *testing.T) {
	spec := &dcnflow.SweepSpec{
		Topologies: []dcnflow.TopologySpec{{Kind: "line", K: 3, Capacity: 1}},
		Workloads:  []dcnflow.WorkloadSpec{{Kind: "shuffle", Hosts: 2, Deadline: 5, Size: 1, Seed: 999}},
		Model:      dcnflow.ModelSpec{Mu: 1, Alpha: 2},
		Tightness:  []float64{1, 0.5},
		Seeds:      []int64{7, 8},
		Solvers:    []string{"sp-mcf", "always-on"},
	}
	if got, want := spec.CellCount(), 8; got != want {
		t.Fatalf("CellCount = %d, want %d", got, want)
	}
	cells := spec.Cells()
	if len(cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	// Solvers innermost: consecutive cells share a scenario.
	if cells[0].Solver != "sp-mcf" || cells[1].Solver != "always-on" {
		t.Errorf("solver order wrong: %s, %s", cells[0].Solver, cells[1].Solver)
	}
	if cells[0].Scenario != cells[1].Scenario {
		t.Error("cells differing only in solver must share a bit-identical scenario")
	}
	// Then seeds, then tightness.
	if cells[2].Seed != 8 || cells[2].Tightness != 1 {
		t.Errorf("cell 2 coordinates = seed %d tightness %v", cells[2].Seed, cells[2].Tightness)
	}
	if cells[4].Tightness != 0.5 {
		t.Errorf("cell 4 tightness = %v, want 0.5", cells[4].Tightness)
	}
	for _, c := range cells {
		if c.Index != cells[c.Index].Index {
			t.Fatalf("cell index %d out of order", c.Index)
		}
		if c.Scenario.Workload.Seed != c.Seed {
			t.Errorf("cell %d: authored workload seed not overridden by axis seed %d", c.Index, c.Seed)
		}
		if c.Scenario.Workload.Tightness != c.Tightness {
			t.Errorf("cell %d: workload tightness %v != axis %v", c.Index, c.Scenario.Workload.Tightness, c.Tightness)
		}
	}
}

// TestSweepLabelsDisambiguated: axis entries whose compact labels collide
// (two uniform workloads differing only in size_mean) get a "#index"
// suffix, so scenario names and JSONL coordinates stay unique.
func TestSweepLabelsDisambiguated(t *testing.T) {
	spec := &dcnflow.SweepSpec{
		Topologies: []dcnflow.TopologySpec{{Kind: "line", K: 3, Capacity: 1}},
		Workloads: []dcnflow.WorkloadSpec{
			{Kind: "uniform", N: 4, T0: 1, T1: 20, SizeMean: 2, SizeStddev: 1},
			{Kind: "uniform", N: 4, T0: 1, T1: 20, SizeMean: 8, SizeStddev: 1},
		},
		Model:   dcnflow.ModelSpec{Mu: 1, Alpha: 2},
		Solvers: []string{"sp-mcf"},
	}
	cells := spec.Cells()
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	if cells[0].WorkloadLabel == cells[1].WorkloadLabel {
		t.Errorf("colliding workload labels not disambiguated: %q", cells[0].WorkloadLabel)
	}
	if cells[0].Scenario.Name == cells[1].Scenario.Name {
		t.Errorf("distinct scenarios share a name: %q", cells[0].Scenario.Name)
	}
	// Distinct labels stay clean — no suffix.
	if cells[0].TopologyLabel != "line-k3" {
		t.Errorf("unique topology label mangled: %q", cells[0].TopologyLabel)
	}
}

// TestSweepSkipLB: without the shared normalizer, only solvers reporting
// their own bound get LB/LBRatio columns.
func TestSweepSkipLB(t *testing.T) {
	spec := &dcnflow.SweepSpec{
		Topologies: []dcnflow.TopologySpec{{Kind: "line", K: 4, Capacity: 1e6}},
		Workloads:  []dcnflow.WorkloadSpec{{Kind: "uniform", N: 4, T0: 1, T1: 20, SizeMean: 3, SizeStddev: 1}},
		Model:      dcnflow.ModelSpec{Mu: 1, Alpha: 2, C: 1e6},
		Solvers:    []string{"dcfsr", "sp-mcf"},
	}
	res, err := dcnflow.Sweep(context.Background(), spec, dcnflow.SweepOptions{
		Workers: 2,
		SkipLB:  true,
		Options: []dcnflow.SolveOption{dcnflow.WithSolverOptions(dcnflow.SolverOptions{MaxIters: 15})},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells[0].LB <= 0 || res.Cells[0].LBRatio <= 0 {
		t.Errorf("dcfsr cell should carry its own bound under SkipLB: %+v", res.Cells[0])
	}
	if res.Cells[1].LB != 0 || res.Cells[1].LBRatio != 0 {
		t.Errorf("sp-mcf cell should carry no bound under SkipLB: %+v", res.Cells[1])
	}
}

// FuzzLoadSweep asserts LoadSweep is total, mirroring FuzzLoadScenario:
// arbitrary input either yields a spec that validates, expands to a finite
// positive cell count and round-trips byte-identically through SaveSweep,
// or an ErrBadSweep-class error — never a panic.
func FuzzLoadSweep(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"topologies": [{"kind": "line", "k": 3, "capacity": 10}], "workloads": [{"kind": "shuffle", "hosts": 2, "deadline": 5, "size": 1}], "model": {"mu": 1, "alpha": 2}, "solvers": ["sp-mcf"]}`,
		`{"name": "g", "topologies": [{"kind": "fattree", "k": 4, "capacity": 100}, {"kind": "star", "k": 3, "capacity": 2}], "workloads": [{"kind": "uniform", "n": 4, "t1": 9, "size_mean": 1}], "model": {"sigma": 1, "mu": 1, "alpha": 4, "c": 100}, "tightness": [1, 0.5], "seeds": [1, 2, 3], "solvers": ["dcfsr", "always-on"]}`,
		`{"topologies": [], "solvers": []}`,
		`{"solvers": ["bogus"]}`,
		`{"topologies": [{"kind": "line", "k": 3, "capacity": 10}], "workloads": [{"kind": "shuffle", "hosts": 2, "deadline": 5, "size": 1}], "model": {"mu": 1, "alpha": 2}, "tightness": [], "seeds": [], "solvers": ["sp-mcf"]}`,
		`[4]`,
		"null",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := dcnflow.LoadSweep(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("LoadSweep accepted a spec that fails Validate: %v", verr)
		}
		n := spec.CellCount()
		if n <= 0 || n > dcnflow.MaxSweepCells {
			t.Fatalf("accepted spec expands to %d cells", n)
		}
		if cells := spec.Cells(); len(cells) != n {
			t.Fatalf("Cells() returned %d cells, CellCount promised %d", len(cells), n)
		}
		var buf bytes.Buffer
		if err := dcnflow.SaveSweep(&buf, spec); err != nil {
			t.Fatalf("accepted spec does not save: %v", err)
		}
		back, err := dcnflow.LoadSweep(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("saved spec does not load back: %v", err)
		}
		if !reflect.DeepEqual(back, spec) {
			t.Fatalf("round-trip changed the spec: %+v != %+v", back, spec)
		}
		var again bytes.Buffer
		if err := dcnflow.SaveSweep(&again, back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Fatalf("SaveSweep is not canonical:\n%s\nvs\n%s", buf.Bytes(), again.Bytes())
		}
	})
}

// TestSweepFileRoundTrip exercises the file-path variants.
func TestSweepFileRoundTrip(t *testing.T) {
	spec := testSweepSpec()
	path := t.TempDir() + "/sweep.json"
	if err := dcnflow.SaveSweepFile(path, spec); err != nil {
		t.Fatal(err)
	}
	back, err := dcnflow.LoadSweepFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, spec) {
		t.Fatalf("file round-trip changed the spec:\n%+v\n%+v", back, spec)
	}
	if _, err := dcnflow.LoadSweepFile(t.TempDir() + "/missing.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
