package dcnflow_test

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesBuildAndRun is the rot guard for examples/: every example
// program must compile and run to completion with a zero exit status. The
// examples double as executable documentation (README.md links to them), so
// a facade change that breaks one must fail the suite, not pkg.go.dev.
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("reading examples/: %v", err)
	}
	bin := t.TempDir()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		// Data-only example directories (examples/scenarios holds JSON
		// scenario specs, exercised by `make scenarios` and the CLI tests)
		// are not Go programs.
		if matches, _ := filepath.Glob(filepath.Join("examples", name, "*.go")); len(matches) == 0 {
			continue
		}
		t.Run(name, func(t *testing.T) {
			exe := filepath.Join(bin, name)
			build := exec.Command("go", "build", "-o", exe, "./examples/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build ./examples/%s: %v\n%s", name, err, out)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			run := exec.CommandContext(ctx, exe)
			out, err := run.CombinedOutput()
			if err != nil {
				t.Fatalf("running examples/%s: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("examples/%s produced no output", name)
			}
		})
	}
}
