package dcnflow_test

import (
	"context"
	"math"
	"reflect"
	"runtime"
	"testing"

	"dcnflow"
)

// intraSolveScenarios are the large-fabric corpus of the intra-solve
// determinism suite: a FatTree k=16 (1344 nodes) and a Jellyfish random
// graph, each with a randomized workload — big enough that the parallel
// oracle actually engages many source groups per sweep.
func intraSolveScenarios() []*dcnflow.ScenarioSpec {
	return []*dcnflow.ScenarioSpec{
		{
			Name:     "intrasolve-fattree16",
			Topology: dcnflow.TopologySpec{Kind: "fattree", K: 16, Capacity: 1000},
			Workload: dcnflow.WorkloadSpec{Kind: "uniform", N: 24, T0: 0, T1: 50, SizeMean: 6, SizeStddev: 2, Seed: 11},
			Model:    dcnflow.ModelSpec{Mu: 1, Alpha: 2, C: 1000},
			Seed:     7,
		},
		{
			Name:     "intrasolve-jellyfish",
			Topology: dcnflow.TopologySpec{Kind: "jellyfish", Switches: 300, Degree: 8, HostsPerSwitch: 2, Capacity: 1000, Seed: 5},
			Workload: dcnflow.WorkloadSpec{Kind: "uniform", N: 20, T0: 0, T1: 40, SizeMean: 5, SizeStddev: 1, Seed: 13},
			Model:    dcnflow.ModelSpec{Mu: 1, Alpha: 2, C: 1000},
			Seed:     7,
		},
	}
}

// TestIntraSolveWorkerDeterminism asserts the tentpole contract end to end:
// the dcfsr pipeline — relaxation, rounding, scheduling — produces a
// bit-identical Solution at intra-solve parallelism 1, 2, and NumCPU. The
// oracle's parallel sweep merges in ascending-source order, so worker count
// must never leak into schedules, energies, bounds, or stats.
func TestIntraSolveWorkerDeterminism(t *testing.T) {
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		counts = append(counts, n)
	}
	for _, spec := range intraSolveScenarios() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			inst, err := spec.Instance()
			if err != nil {
				t.Fatal(err)
			}
			var ref *dcnflow.Solution
			var refWorkers int
			for _, w := range counts {
				s, err := dcnflow.NewSolver(dcnflow.SolverDCFSR,
					dcnflow.WithSeed(spec.Seed),
					dcnflow.WithSolverOptions(dcnflow.SolverOptions{MaxIters: 10, OracleWorkers: w}))
				if err != nil {
					t.Fatal(err)
				}
				sol, err := s.Solve(context.Background(), inst)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if ref == nil {
					ref, refWorkers = sol, w
					continue
				}
				if math.Float64bits(sol.Energy) != math.Float64bits(ref.Energy) {
					t.Errorf("workers=%d vs %d: energy %v vs %v (bits differ)", w, refWorkers, sol.Energy, ref.Energy)
				}
				if math.Float64bits(sol.LowerBound) != math.Float64bits(ref.LowerBound) {
					t.Errorf("workers=%d vs %d: lower bound %v vs %v (bits differ)", w, refWorkers, sol.LowerBound, ref.LowerBound)
				}
				if !reflect.DeepEqual(sol.Schedule, ref.Schedule) {
					t.Errorf("workers=%d vs %d: schedules diverge", w, refWorkers)
				}
				if !reflect.DeepEqual(sol.Stats, ref.Stats) {
					t.Errorf("workers=%d vs %d: stats diverge", w, refWorkers)
				}
			}
		})
	}
}
