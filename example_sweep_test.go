package dcnflow_test

import (
	"context"
	"fmt"
	"log"

	"dcnflow"
)

// ExampleSweep runs a tiny two-axis grid — one topology, one workload, two
// seeds, two solvers — on the sweep engine and prints the per-solver
// aggregate. The output is identical for every Workers value: cells are
// collected in expansion order and all randomness derives from the spec.
func ExampleSweep() {
	spec := &dcnflow.SweepSpec{
		Name: "quickstart",
		Topologies: []dcnflow.TopologySpec{
			{Kind: "line", K: 4, Capacity: 10},
		},
		Workloads: []dcnflow.WorkloadSpec{
			{Kind: "shuffle", Hosts: 2, Release: 0, Deadline: 8, Size: 4},
		},
		Model:   dcnflow.ModelSpec{Mu: 1, Alpha: 2, C: 10},
		Seeds:   []int64{1, 2},
		Solvers: []string{"sp-mcf", "always-on"},
	}
	res, err := dcnflow.Sweep(context.Background(), spec, dcnflow.SweepOptions{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d cells solved\n", len(res.Cells))
	for _, a := range res.Aggregate() {
		fmt.Printf("%s: %d cells, mean E/LB %.2f\n", a.Solver, a.Cells, a.MeanRatio)
	}
	// Output:
	// 4 cells solved
	// sp-mcf: 2 cells, mean E/LB 1.00
	// always-on: 2 cells, mean E/LB 20.00
}
