// Package dcnflow is a library for energy-efficient scheduling and routing
// of deadline-constrained flows in data center networks, reproducing
//
//	Wang, Zhang, Zheng, Vasilakos, Ren, Liu:
//	"Energy-Efficient Flow Scheduling and Routing with Hard Deadlines in
//	Data Center Networks", ICDCS 2014 (arXiv:1405.7484).
//
// The library covers both problem versions from the paper:
//
//   - DCFS (routing given): SolveDCFS runs the optimal Most-Critical-First
//     combinatorial algorithm (Algorithm 1 / Theorem 1 / Corollary 1).
//   - DCFSR (joint routing + scheduling, strongly NP-hard): SolveDCFSR runs
//     the Random-Schedule relaxation/rounding approximation (Algorithm 2 /
//     Theorems 4, 6, 7), and LowerBound exposes the fractional bound its
//     evaluation is normalised by.
//
// Beyond the paper, the library implements the online setting its authors
// defer to future work: flows revealed at release time, scheduled by either
// the irrevocable marginal-cost greedy (SolveOnline) or the rolling-horizon
// re-optimizer (SolveOnlineRolling), which re-runs the Random-Schedule
// relaxation over the remaining horizon with frozen commitments at every
// epoch boundary (SolveDCFSRPartial) and validates every run with the
// discrete-event simulator (ReplayOnline).
//
// # Scenario/Solver API
//
// The unified entry point is a typed Instance (graph + flows + power model
// + horizon, validated once) solved by any registered Solver under a
// context.Context:
//
//	ft, _ := dcnflow.FatTree(8, 1000)            // 80 switches, 128 hosts
//	flows, _ := dcnflow.UniformWorkload(dcnflow.WorkloadConfig{
//	    N: 100, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
//	    Hosts: ft.Hosts, Seed: 42,
//	})
//	model := dcnflow.PowerModel{Sigma: 1, Mu: 1, Alpha: 2, C: 1000}
//	inst, _ := dcnflow.NewInstance(ft.Graph, flows, model)
//	sol, _ := dcnflow.Solve(ctx, "dcfsr", inst, dcnflow.WithSeed(1))
//	fmt.Println("energy:", sol.Energy, "LB:", sol.LowerBound)
//
// SolverNames lists the eight built-in families (dcfsr, dcfs-mcf, sp-mcf,
// ecmp-mcf, always-on, exact, greedy-online, rolling-online); Register adds
// custom ones. Instances also load declaratively from JSON scenario specs
// (LoadScenario / ScenarioSpec.Instance; `dcnflow run spec.json -solver
// dcfsr` on the command line), so experiments are data. Solves accept a
// context — cancellation is observed at Frank–Wolfe iteration and epoch
// boundaries — and an optional progress callback (WithProgress).
//
// Whole evaluation campaigns are data too: a SweepSpec crosses topology,
// workload, deadline-tightness and seed axes with a solver list, and Sweep
// executes the grid on a bounded worker pool with byte-deterministic
// output — results ordered by cell, every seed derived from the spec, so
// the worker count is a pure wall-clock lever (`dcnflow sweep grid.json
// -workers 8 -out results.jsonl`; see DESIGN.md's "Sweep engine" chapter).
//
// # Engine & serving
//
// The compile-once/solve-many entry point is the Engine: a bounded LRU
// cache of compiled instances (generated topologies, flat adjacency
// views, pooled shortest-path and solver scratch, built workload
// instances) keyed by a canonical topology+model fingerprint, plus a
// deterministic batch executor:
//
//	eng := dcnflow.NewEngine(dcnflow.EngineOptions{})
//	r := eng.Solve(ctx, dcnflow.Request{Scenario: spec, Solver: "dcfsr"})
//	results := eng.SolveBatch(ctx, reqs)
//
// Engine output is bit-identical to direct Solve calls whether the cache
// hits, misses or is disabled; warm solves skip topology generation,
// graph compilation and scratch allocation (>= 2x fewer allocations,
// pinned by regression test). Sweep, the experiment runners and the CLI
// dispatch through a shared Engine, and `dcnflow serve` exposes one over
// HTTP (POST /v1/solve, POST /v1/batch, GET /healthz — see NewServeHandler
// and Client, and DESIGN.md's "Engine & serving" chapter).
//
// The free functions below (SolveDCFSR, SPMCF, SolveOnline, ...) predate
// this API; they remain as thin shims over the same engines and produce
// bit-identical output, but new code should prefer the registry.
//
// The subsystems (graph, topologies, power model, workloads, YDS,
// F-MCF solver, simulator, baselines, experiment harness) live under
// internal/ and are surfaced here through aliases, so external users never
// import internal paths directly.
//
// # Performance knobs
//
// The Random-Schedule pipeline is engineered around a zero-allocation
// Frank–Wolfe hot path (flat CSR adjacency, reusable shortest-path
// scratch, interned path handles, sparse line search); see DESIGN.md for
// the architecture. The levers exposed here:
//
//   - DCFSROptions.Parallelism bounds concurrent per-interval relaxation
//     solves (default NumCPU). Intervals are fanned out in fixed-size
//     blocks, so results never depend on the worker count — parallelism is
//     purely a wall-clock lever.
//   - SolverOptions.OracleWorkers fans the per-source shortest-path runs
//     inside each Frank–Wolfe iteration across a bounded worker pool
//     (default sequential; negative means all cores). The parallel sweep
//     merges in ascending-source order, so outputs stay byte-identical at
//     any worker count — the lever for single-solve latency on large
//     fabrics, composing multiplicatively with Parallelism.
//   - SolverOptions.MaxIters and SolverOptions.Tol bound the Frank–Wolfe
//     iterations (default 60) and the relative duality-gap stop (default
//     1e-3): Tol trades lower-bound tightness for time, with the residual
//     gap reported per solve.
//   - SolverOptions.ClosedFormStep swaps the bisection line search for an
//     analytic step on exactly-quadratic costs (alpha == 2); faster, but
//     trajectories are no longer bit-identical to the default.
//   - DCFSROptions.WarmStart seeds Frank–Wolfe solves from earlier
//     decompositions. Off by default: on the paper's evaluation workloads
//     the hop-count cold start converges in fewer iterations and keeps
//     runs bit-reproducible across releases. It pays on long chains of
//     near-identical instances — exactly the rolling-horizon epoch
//     re-solves, where SolveOnlineRolling seeds each epoch's per-interval
//     solves from the previous epoch's decompositions and measures roughly
//     half the Frank–Wolfe iterations of cold starts on slowly varying
//     diurnal workloads (see DESIGN.md's "Online scheduling" chapter).
package dcnflow

import (
	"context"
	"io"

	"dcnflow/internal/baseline"
	"dcnflow/internal/core"
	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/online"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
	"dcnflow/internal/sim"
	"dcnflow/internal/timeline"
	"dcnflow/internal/topology"
)

// Graph model re-exports.
type (
	// Graph is the directed network graph (two directed edges per physical
	// link).
	Graph = graph.Graph
	// NodeID identifies a switch or host.
	NodeID = graph.NodeID
	// EdgeID identifies one direction of a physical link.
	EdgeID = graph.EdgeID
	// Path is a directed path given by its edge ids.
	Path = graph.Path
	// Topology bundles a generated graph with its host and switch lists.
	Topology = topology.Topology
)

// Flow model re-exports.
type (
	// Flow is a deadline-constrained flow: Size units of data from Src to
	// Dst within [Release, Deadline].
	Flow = flow.Flow
	// FlowID identifies a flow within a FlowSet.
	FlowID = flow.ID
	// FlowSet is an ordered, validated collection of flows.
	FlowSet = flow.Set
	// WorkloadConfig parameterises the random workload generator used by
	// the paper's evaluation (uniform spans, N(mean, stddev) sizes).
	WorkloadConfig = flow.GenConfig
)

// Power and schedule re-exports.
type (
	// PowerModel is the link power function f(x) = sigma + mu*x^alpha for
	// 0 < x <= C and f(0) = 0.
	PowerModel = power.Model
	// Schedule is a complete solution: per-flow paths and rate functions.
	Schedule = schedule.Schedule
	// FlowSchedule is one flow's path and piecewise-constant rate function.
	FlowSchedule = schedule.FlowSchedule
	// RateSegment is one constant-rate piece of a flow schedule.
	RateSegment = schedule.RateSegment
	// VerifyOptions controls Schedule.Verify strictness.
	VerifyOptions = schedule.VerifyOptions
	// Interval is a closed time interval.
	Interval = timeline.Interval
)

// Solver re-exports.
type (
	// DCFSInput is a Deadline-Constrained Flow Scheduling instance (paths
	// given).
	DCFSInput = core.DCFSInput
	// DCFSResult is the Most-Critical-First output.
	DCFSResult = core.DCFSResult
	// CriticalRound logs one Most-Critical-First iteration.
	CriticalRound = core.CriticalRound
	// DCFSROptions tunes Random-Schedule.
	DCFSROptions = core.DCFSROptions
	// DCFSRResult is the Random-Schedule output.
	DCFSRResult = core.DCFSRResult
	// ExactOptions bounds the brute-force small-instance DCFSR solver.
	ExactOptions = core.ExactOptions
	// ExactResult is the brute-force optimum.
	ExactResult = core.ExactResult
	// SimResult reports simulator measurements.
	SimResult = sim.Result
	// SimOptions configures the simulator.
	SimOptions = sim.Options
	// EDFReport is the Theorem 4 per-link EDF time-sharing check.
	EDFReport = sim.EDFReport
	// AlwaysOnResult is the no-energy-management baseline outcome.
	AlwaysOnResult = baseline.AlwaysOnResult
	// SolverOptions tunes the Frank–Wolfe F-MCF relaxation inside
	// Random-Schedule (DCFSROptions.Solver).
	SolverOptions = mcfsolve.Options
	// CostKind selects the relaxation's per-link cost.
	CostKind = mcfsolve.CostKind
	// ProgressEvent is one observation of a running solve (per-interval
	// relaxation events, per-epoch rolling re-plan events).
	ProgressEvent = core.ProgressEvent
	// ProgressFunc observes solve progress (DCFSROptions.Progress,
	// WithProgress).
	ProgressFunc = core.ProgressFunc
)

// Relaxation cost kinds.
const (
	// CostDynamic relaxes with g(x) = mu*x^alpha (the paper's Section V-A
	// speed-scaling relaxation).
	CostDynamic = mcfsolve.CostDynamic
	// CostEnvelope relaxes with the convex lower envelope of the full
	// power function f, rewarding consolidation under idle power.
	CostEnvelope = mcfsolve.CostEnvelope
)

// Topology constructors.
var (
	// FatTree builds a k-ary fat-tree (k=8 gives the paper's 80 switches /
	// 128 servers).
	FatTree = topology.FatTree
	// BCube builds a BCube(n, l) server-centric topology.
	BCube = topology.BCube
	// LeafSpine builds a two-tier Clos.
	LeafSpine = topology.LeafSpine
	// VL2 builds a VL2-style folded Clos with dual-homed ToRs.
	VL2 = topology.VL2
	// Jellyfish builds a random regular switch graph (seeded).
	Jellyfish = topology.Jellyfish
	// Line builds the paper's Fig. 1 line network.
	Line = topology.Line
	// Star builds a single-switch star.
	Star = topology.Star
	// ParallelLinks builds the Theorem 2/3 hardness gadget.
	ParallelLinks = topology.ParallelLinks
)

// Online scheduling (the paper's future-work direction): flows are revealed
// only at their release times. Two schedulers cover the effort/quality
// spectrum — the marginal-cost greedy places each flow irrevocably on
// arrival, and the rolling-horizon re-optimizer batches arrivals into
// epochs and re-runs the Random-Schedule relaxation over the remaining
// horizon with frozen commitments at every epoch boundary.
type (
	// OnlineOptions tunes the greedy online scheduler.
	OnlineOptions = online.Options
	// OnlineResult is the outcome of a greedy online run.
	OnlineResult = online.Result
	// OnlineScheduler admits flows one at a time (marginal-cost greedy).
	OnlineScheduler = online.Scheduler
	// RollingOptions tunes the rolling-horizon online scheduler.
	RollingOptions = online.RollingOptions
	// RollingScheduler is the rolling-horizon online DCFSR scheduler.
	RollingScheduler = online.RollingScheduler
	// RollingResult is the outcome of a rolling-horizon run.
	RollingResult = online.RollingResult
	// RollingStats aggregates per-epoch diagnostics of a rolling run.
	RollingStats = online.RollingStats
	// ReplanPolicy decides when the rolling scheduler re-optimises.
	ReplanPolicy = online.ReplanPolicy
	// FixedPeriod re-plans every Period time units.
	FixedPeriod = online.FixedPeriod
	// ArrivalCount re-plans once N arrivals are queued.
	ArrivalCount = online.ArrivalCount
	// LoadDrift re-plans when queued demand drifts past a fraction of the
	// committed load.
	LoadDrift = online.LoadDrift
	// OnlineEngine is the event-driven interface both online schedulers
	// implement; ReplayOnline drives one through a flow set.
	OnlineEngine = sim.OnlineEngine
	// OnlineReplayResult is the validated outcome of an online replay.
	OnlineReplayResult = sim.ReplayResult
	// PinnedCommitment is an in-flight flow's frozen state at a re-plan
	// instant (path, transmitted data).
	PinnedCommitment = core.PinnedCommitment
	// DCFSRPartialInput is a residual DCFSR instance with frozen
	// commitments — the epoch re-solve input.
	DCFSRPartialInput = core.DCFSRPartialInput
	// DCFSRPartialResult is the residual plan of a partial solve.
	DCFSRPartialResult = core.DCFSRPartialResult
	// RelaxationState carries per-interval fractional solutions across
	// epochs for warm-started re-solves.
	RelaxationState = core.RelaxationState
	// DeltaOptions tunes the rolling scheduler's sensitivity-bounded
	// incremental delta re-solve (RollingOptions.Delta): opt-in interval
	// reuse across epochs under a load-drift bound and a staleness cap.
	DeltaOptions = core.DeltaOptions
	// CandidatePath is one entry of a flow's aggregated rounding
	// distribution.
	CandidatePath = core.CandidatePath
	// DiurnalConfig parameterises the sinusoidal time-varying workload.
	DiurnalConfig = flow.DiurnalConfig
	// PacketLevelOptions configures the store-and-forward simulation.
	PacketLevelOptions = sim.PacketLevelOptions
	// PacketLevelResult reports per-flow completion under the per-link EDF
	// serialisation discipline.
	PacketLevelResult = sim.PacketLevelResult
)

// SolveOnline replays the flow set in release order through the online
// marginal-cost greedy scheduler.
//
// Deprecated: run the registered "greedy-online" solver
// (WithOnlineOptions); this shim delegates to the same engine and produces
// bit-identical output.
func SolveOnline(g *Graph, flows *FlowSet, m PowerModel, opts OnlineOptions) (*OnlineResult, error) {
	return online.Run(g, flows, m, opts)
}

// NewOnlineScheduler creates an incremental online scheduler for callers
// that admit flows as they arrive.
func NewOnlineScheduler(g *Graph, m PowerModel, horizon Interval, opts OnlineOptions) (*OnlineScheduler, error) {
	return online.New(g, m, horizon, opts)
}

// SolveOnlineRolling replays the flow set through the rolling-horizon
// scheduler via the event-driven simulator and returns both the scheduler's
// outcome and the simulator's validated replay (deadlines, capacities,
// independently measured energy).
//
// Deprecated: run the registered "rolling-online" solver (WithReplanPolicy,
// WithRollingOptions); this shim delegates to the same engine and produces
// bit-identical output.
func SolveOnlineRolling(g *Graph, flows *FlowSet, m PowerModel, opts RollingOptions) (*RollingResult, *OnlineReplayResult, error) {
	return online.RunRolling(g, flows, m, opts)
}

// NewRollingScheduler creates an incremental rolling-horizon scheduler for
// callers that feed arrivals themselves (Arrive/AdvanceTo/Finish in release
// order).
func NewRollingScheduler(g *Graph, m PowerModel, horizon Interval, opts RollingOptions) (*RollingScheduler, error) {
	return online.NewRolling(g, m, horizon, opts)
}

// ReplayOnline drives any online scheduling engine through an event-driven
// replay of the flow set (arrivals interleaved with the engine's re-plan
// boundaries) and validates the resulting schedule post hoc with the
// discrete-event simulator.
func ReplayOnline(g *Graph, flows *FlowSet, m PowerModel, engine OnlineEngine, opts SimOptions) (*OnlineReplayResult, error) {
	return sim.ReplayOnline(g, flows, m, engine, opts)
}

// SolveDCFSRPartial re-runs the Random-Schedule relaxation over the
// remaining horizon with frozen commitments (pinned paths, transmitted
// data) — the epoch re-solve primitive under the rolling-horizon scheduler,
// exposed for callers building their own re-optimization loops. Like every
// solve of the Scenario/Solver API it takes a context, observed at each
// Frank–Wolfe iteration boundary; pass context.Background() when
// cancellation is not needed.
func SolveDCFSRPartial(ctx context.Context, in DCFSRPartialInput) (*DCFSRPartialResult, error) {
	return core.SolveDCFSRPartialCtx(ctx, in)
}

// SimulatePacketLevel runs the store-and-forward per-link EDF simulation
// of a Random-Schedule output.
func SimulatePacketLevel(g *Graph, flows *FlowSet, sched *Schedule, opts PacketLevelOptions) (*PacketLevelResult, error) {
	return sim.RunPacketLevel(g, flows, sched, opts)
}

// WriteTrace serializes a flow set as CSV (id,src,dst,release,deadline,size).
func WriteTrace(w io.Writer, flows *FlowSet) error { return flow.WriteTrace(w, flows) }

// ReadTrace parses a CSV flow trace produced by WriteTrace.
func ReadTrace(r io.Reader) (*FlowSet, error) { return flow.ReadTrace(r) }

// DiurnalWorkload draws flows from a sinusoidal arrival-intensity profile,
// modelling the time-varying load the paper's introduction cites.
func DiurnalWorkload(cfg DiurnalConfig) (*FlowSet, error) { return flow.Diurnal(cfg) }

// IncastWorkload generates a many-to-one pattern with a shared deadline:
// every sender transmits size units to the receiver within
// [release, deadline].
func IncastWorkload(receiver NodeID, senders []NodeID, release, deadline, size float64) (*FlowSet, error) {
	return flow.Incast(receiver, senders, release, deadline, size)
}

// Workload constructors.
var (
	// NewFlowSet validates and indexes a set of flows.
	NewFlowSet = flow.NewSet
	// UniformWorkload draws the paper's evaluation workload.
	UniformWorkload = flow.Uniform
	// PartitionAggregateWorkload models search-style fan-in with one
	// shared deadline.
	PartitionAggregateWorkload = flow.PartitionAggregate
	// ShuffleWorkload models an all-to-all shuffle stage.
	ShuffleWorkload = flow.Shuffle
	// SplitFlow divides a flow into k equal sub-flows sharing its span —
	// the paper's Section II-B device for multi-path routing.
	SplitFlow = flow.Split
	// SplitFlowSet splits every flow above a size threshold.
	SplitFlowSet = flow.SplitSet
)

// SolveDCFS schedules flows on the given routing paths with the optimal
// Most-Critical-First algorithm.
//
// Deprecated: build an Instance with NewInstanceBuilder().Routing(paths)
// and run the registered "dcfs-mcf" solver; this shim delegates to the same
// engine and produces bit-identical output.
func SolveDCFS(g *Graph, flows *FlowSet, paths map[FlowID]Path, m PowerModel) (*DCFSResult, error) {
	return core.SolveDCFSCtx(context.Background(), core.DCFSInput{Graph: g, Flows: flows, Paths: paths, Model: m})
}

// SolveDCFSR jointly routes and schedules flows with the Random-Schedule
// approximation.
//
// Deprecated: build an Instance and run the registered "dcfsr" solver via
// Solve(ctx, "dcfsr", inst, WithSeed(opts.Seed), ...); this shim delegates
// to the same engine with a background context and produces bit-identical
// output.
func SolveDCFSR(g *Graph, flows *FlowSet, m PowerModel, opts DCFSROptions) (*DCFSRResult, error) {
	return core.SolveDCFSRCtx(context.Background(), core.DCFSRInput{Graph: g, Flows: flows, Model: m, Opts: opts})
}

// LowerBound computes the fractional relaxation bound used to normalise the
// paper's Fig. 2. It is the LowerBound field of the "dcfsr" solver's
// Solution, computable without the rounding step.
func LowerBound(g *Graph, flows *FlowSet, m PowerModel, opts DCFSROptions) (float64, error) {
	return core.LowerBoundCtx(context.Background(), g, flows, m, opts)
}

// SolveDCFSRExact computes the exact DCFSR optimum for small instances by
// exhaustive path enumeration with optimal per-assignment scheduling — a
// verification tool for the approximation algorithms.
//
// Deprecated: run the registered "exact" solver (WithExactOptions); this
// shim delegates to the same engine and produces bit-identical output.
func SolveDCFSRExact(g *Graph, flows *FlowSet, m PowerModel, opts ExactOptions) (*ExactResult, error) {
	return core.SolveDCFSRExactCtx(context.Background(), core.DCFSRInput{Graph: g, Flows: flows, Model: m}, opts)
}

// ShortestPathRouting assigns every flow its deterministic minimum-hop
// path — the input for the SP+MCF comparison scheme.
func ShortestPathRouting(g *Graph, flows *FlowSet) (map[FlowID]Path, error) {
	return baseline.ShortestPaths(g, flows)
}

// SPMCF runs the paper's comparison baseline: shortest-path routing
// followed by the optimal Most-Critical-First schedule.
//
// Deprecated: run the registered "sp-mcf" solver; this shim delegates to
// the same engine and produces bit-identical output.
func SPMCF(g *Graph, flows *FlowSet, m PowerModel) (*DCFSResult, error) {
	return baseline.SPMCF(g, flows, m)
}

// ECMPMCF is SPMCF with randomised equal-cost multi-path routing over up to
// k shortest paths.
//
// Deprecated: run the registered "ecmp-mcf" solver (WithECMPWidth,
// WithSeed); this shim delegates to the same engine and produces
// bit-identical output.
func ECMPMCF(g *Graph, flows *FlowSet, m PowerModel, k int, seed int64) (*DCFSResult, error) {
	return baseline.ECMPMCF(g, flows, m, k, seed)
}

// AlwaysOnFullRate is the no-energy-management baseline: shortest paths,
// full-rate transmission, every link powered for the whole horizon.
//
// Deprecated: run the registered "always-on" solver; this shim delegates to
// the same engine and produces bit-identical output.
func AlwaysOnFullRate(g *Graph, flows *FlowSet, m PowerModel) (*AlwaysOnResult, error) {
	return baseline.AlwaysOnFullRate(g, flows, m)
}

// Simulate executes a schedule on the network with the discrete-event
// simulator, independently measuring energy, deadlines and capacities.
func Simulate(g *Graph, flows *FlowSet, sched *Schedule, m PowerModel, opts SimOptions) (*SimResult, error) {
	return sim.Run(g, flows, sched, m, opts)
}

// VerifyEDFTimeSharing checks Theorem 4's per-link EDF discipline on a
// Random-Schedule output.
func VerifyEDFTimeSharing(g *Graph, flows *FlowSet, sched *Schedule) (*EDFReport, error) {
	return sim.VerifyEDFTimeSharing(g, flows, sched)
}

// SigmaForRopt returns the idle power sigma that places the energy-optimal
// link rate (Lemma 3) at r: sigma = mu*(alpha-1)*r^alpha.
func SigmaForRopt(mu, alpha, r float64) float64 {
	return power.SigmaForRopt(mu, alpha, r)
}
