package dcnflow_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dcnflow"
)

// drainServer builds a sharded server under admission pressure: the bucket
// holds `burst` tokens and refills so slowly that everyone past the burst
// queues until drained.
func drainServer(t *testing.T, burst float64) (*httptest.Server, *dcnflow.ServeHandler) {
	t.Helper()
	group := dcnflow.NewEngineGroup(2, dcnflow.EngineOptions{})
	handler := dcnflow.NewServeHandlerSharded(group, dcnflow.ServeOptions{
		Admission: dcnflow.AdmissionOptions{
			Rate:       0.0001, // ~3 hours per token: queued requests stay queued
			Burst:      burst,
			QueueDepth: 32,
			MaxWait:    time.Minute,
		},
	})
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return srv, handler
}

func postSolve(srv *httptest.Server, req dcnflow.ServeRequest) (*http.Response, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		return nil, err
	}
	return srv.Client().Post(srv.URL+"/v1/solve", "application/json", &buf)
}

// metricsGauge scrapes one unlabelled gauge series off /metrics.
func metricsGauge(t *testing.T, srv *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(body.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line, name+" %g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no %s series on /metrics", name)
	return 0
}

func metricsQueueDepth(t *testing.T, srv *httptest.Server) int {
	return int(metricsGauge(t, srv, "dcnflow_admission_queue_depth"))
}

// TestServeDrainUnderLoad: Drain during an in-flight batch with queued
// admissions — the admitted batch completes with 200, every queued request
// gets a clean 503 with a Retry-After, post-drain arrivals get 503, and no
// handler goroutine leaks. Runs under -race via make test-race-online.
func TestServeDrainUnderLoad(t *testing.T) {
	before := runtime.NumGoroutine()

	srv, handler := drainServer(t, 1) // one token: exactly one in-flight batch
	spec := serveScenario()

	// The admitted batch: consumes the only token and stays in flight for
	// seconds (a cold fat-tree compile+solve), so the drain lands mid-batch.
	heavy := dcnflow.ScenarioSpec{
		Name:     "drain-heavy",
		Topology: dcnflow.TopologySpec{Kind: "fattree", K: 6, Capacity: 1000},
		Workload: dcnflow.WorkloadSpec{Kind: "uniform", N: 40, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3},
		Model:    dcnflow.ModelSpec{Mu: 1, Alpha: 2, C: 1000},
	}
	batchDone := make(chan error, 1)
	go func() {
		client := &dcnflow.Client{BaseURL: srv.URL, HTTPClient: srv.Client()}
		results, err := client.SolveBatch(context.Background(), []dcnflow.ServeRequest{
			{Scenario: heavy, Solver: dcnflow.SolverDCFSR},
			{Scenario: spec, Solver: dcnflow.SolverGreedyOnline},
		})
		if err == nil {
			for i, r := range results {
				if r.Error != "" {
					err = fmt.Errorf("admitted batch item %d failed: %s", i, r.Error)
					break
				}
			}
		}
		batchDone <- err
	}()

	// The batch holds the only token once admitted; wait for that before
	// lining anyone else up, so the queue membership is deterministic.
	deadline := time.Now().Add(10 * time.Second)
	for metricsGauge(t, srv, "dcnflow_admission_tokens") >= 1 {
		if time.Now().After(deadline) {
			t.Fatal("batch never consumed the admission token")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Three queued admissions (no tokens left, refill is hours away).
	const queued = 3
	var wg sync.WaitGroup
	statuses := make(chan int, queued)
	retryAfters := make(chan string, queued)
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := postSolve(srv, dcnflow.ServeRequest{Scenario: spec, Solver: dcnflow.SolverSPMCF})
			if err != nil {
				t.Errorf("queued solve: %v", err)
				return
			}
			defer resp.Body.Close()
			statuses <- resp.StatusCode
			retryAfters <- resp.Header.Get("Retry-After")
			var body struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
				t.Errorf("queued solve answered no clean JSON error body (decode err %v)", err)
			}
		}()
	}

	// Wait until all three are actually queued (scraped off /metrics), then
	// pull the plug.
	deadline = time.Now().Add(10 * time.Second)
	for metricsQueueDepth(t, srv) != queued {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d", queued)
		}
		time.Sleep(2 * time.Millisecond)
	}
	handler.Drain()

	wg.Wait()
	close(statuses)
	close(retryAfters)
	for st := range statuses {
		if st != http.StatusServiceUnavailable {
			t.Errorf("queued request answered %d, want 503", st)
		}
	}
	for ra := range retryAfters {
		if ra == "" {
			t.Error("503 without a Retry-After header")
		}
	}

	// The admitted batch still completes cleanly.
	select {
	case err := <-batchDone:
		if err != nil {
			t.Fatalf("admitted batch: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("admitted batch never finished after drain")
	}

	// New arrivals after the drain are bounced immediately.
	resp, err := postSolve(srv, dcnflow.ServeRequest{Scenario: spec, Solver: dcnflow.SolverSPMCF})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain solve answered %d, want 503", resp.StatusCode)
	}
	handler.Drain() // idempotent

	// No goroutine leaks once the server is down: the admitter's refill
	// timer is stopped and no waiter is parked forever.
	srv.CloseClientConnections()
	srv.Close()
	leakDeadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after drain\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeAdmissionEndToEnd: queue-full rejections surface as 429 with a
// Retry-After over real HTTP, and admitted traffic still solves correctly.
func TestServeAdmissionEndToEnd(t *testing.T) {
	group := dcnflow.NewEngineGroup(1, dcnflow.EngineOptions{})
	handler := dcnflow.NewServeHandlerSharded(group, dcnflow.ServeOptions{
		Admission: dcnflow.AdmissionOptions{Rate: 0.0001, Burst: 1, QueueDepth: 1, MaxWait: time.Minute},
	})
	srv := httptest.NewServer(handler)
	defer srv.Close()
	defer handler.Drain()
	spec := serveScenario()

	// Token 1: solves fine.
	resp, err := postSolve(srv, dcnflow.ServeRequest{Scenario: spec, Solver: dcnflow.SolverSPMCF})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admitted solve answered %d", resp.StatusCode)
	}

	// Fill the queue's single slot.
	go func() {
		if r, err := postSolve(srv, dcnflow.ServeRequest{Scenario: spec, Solver: dcnflow.SolverSPMCF}); err == nil {
			r.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for metricsQueueDepth(t, srv) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Queue full: 429 + Retry-After.
	resp, err = postSolve(srv, dcnflow.ServeRequest{Scenario: spec, Solver: dcnflow.SolverSPMCF})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full solve answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
}
