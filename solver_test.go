package dcnflow_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"dcnflow"
)

// tinyInstance is a fat-tree workload small enough for every registered
// solver, including the brute-force "exact" (4^6 assignments).
func tinyInstance(t *testing.T) *dcnflow.Instance {
	t.Helper()
	ft, err := dcnflow.FatTree(4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := dcnflow.UniformWorkload(dcnflow.WorkloadConfig{
		N: 6, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := dcnflow.NewInstanceBuilder().
		Topology(ft).
		Flows(flows).
		Model(dcnflow.PowerModel{Sigma: 0.5, Mu: 1, Alpha: 2, C: 1000}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// mediumWorkload builds a workload large enough that a DCFSR solve spans
// many intervals and Frank–Wolfe iterations.
func mediumWorkload(t *testing.T) (*dcnflow.Topology, *dcnflow.FlowSet, dcnflow.PowerModel) {
	t.Helper()
	ft, err := dcnflow.FatTree(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := dcnflow.UniformWorkload(dcnflow.WorkloadConfig{
		N: 40, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ft, flows, dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1e9}
}

// TestRegistryListsAllFamilies pins the acceptance criterion: all eight
// solver families are registered.
func TestRegistryListsAllFamilies(t *testing.T) {
	want := []string{
		dcnflow.SolverAlwaysOn, dcnflow.SolverDCFSMCF, dcnflow.SolverDCFSR,
		dcnflow.SolverECMPMCF, dcnflow.SolverExact, dcnflow.SolverGreedyOnline,
		dcnflow.SolverRollingOnline, dcnflow.SolverSPMCF,
	}
	if got := dcnflow.SolverNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("SolverNames() = %v, want %v", got, want)
	}
}

// TestAllSolversRunViaRegistry runs every registered family on one tiny
// instance through Registry + Solve(ctx, instance).
func TestAllSolversRunViaRegistry(t *testing.T) {
	inst := tinyInstance(t)
	for _, name := range dcnflow.SolverNames() {
		t.Run(name, func(t *testing.T) {
			sol, err := dcnflow.Solve(context.Background(), name, inst, dcnflow.WithSeed(1))
			if err != nil {
				t.Fatalf("Solve(%s): %v", name, err)
			}
			if sol.Solver != name {
				t.Errorf("Solution.Solver = %q, want %q", sol.Solver, name)
			}
			if sol.Schedule == nil {
				t.Fatal("nil schedule")
			}
			if sol.Energy <= 0 {
				t.Errorf("energy %v not positive", sol.Energy)
			}
			if got := sol.Schedule.Len(); got != inst.Flows().Len() {
				t.Errorf("schedule covers %d flows, want %d", got, inst.Flows().Len())
			}
			if _, ok := sol.Stats["links_on"]; !ok {
				t.Error("missing links_on stat")
			}
			switch name {
			case dcnflow.SolverDCFSR:
				if sol.LowerBound <= 0 || sol.Energy < sol.LowerBound {
					t.Errorf("dcfsr energy %v vs LB %v inconsistent", sol.Energy, sol.LowerBound)
				}
			}
		})
	}
}

// TestNamedSolverIsReusable constructs one solver and solves twice —
// Solver values must be reusable and deterministic per configuration.
func TestNamedSolverIsReusable(t *testing.T) {
	inst := tinyInstance(t)
	s, err := dcnflow.NewSolver(dcnflow.SolverDCFSR, dcnflow.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != dcnflow.SolverDCFSR {
		t.Errorf("Name() = %q", s.Name())
	}
	a, err := s.Solve(context.Background(), inst)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Solve(context.Background(), inst)
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy || a.LowerBound != b.LowerBound {
		t.Errorf("repeat solve diverged: %v/%v vs %v/%v", a.Energy, a.LowerBound, b.Energy, b.LowerBound)
	}
}

// TestLegacyShimsBitIdentical pins the acceptance criterion: every legacy
// facade function produces bit-identical output to its registered solver.
func TestLegacyShimsBitIdentical(t *testing.T) {
	inst := tinyInstance(t)
	g, flows, m := inst.Graph(), inst.Flows(), inst.Model()
	ctx := context.Background()

	check := func(name string, legacyEnergy float64, opts ...dcnflow.SolveOption) {
		t.Helper()
		sol, err := dcnflow.Solve(ctx, name, inst, opts...)
		if err != nil {
			t.Fatalf("registry %s: %v", name, err)
		}
		if sol.Energy != legacyEnergy {
			t.Errorf("%s: registry energy %v != legacy energy %v (must be bit-identical)", name, sol.Energy, legacyEnergy)
		}
	}

	rs, err := dcnflow.SolveDCFSR(g, flows, m, dcnflow.DCFSROptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	check(dcnflow.SolverDCFSR, rs.Schedule.EnergyTotal(m), dcnflow.WithSeed(1))
	if sol, err := dcnflow.Solve(ctx, dcnflow.SolverDCFSR, inst, dcnflow.WithSeed(1)); err != nil {
		t.Fatal(err)
	} else if sol.LowerBound != rs.LowerBound {
		t.Errorf("dcfsr: registry LB %v != legacy LB %v", sol.LowerBound, rs.LowerBound)
	}

	sp, err := dcnflow.SPMCF(g, flows, m)
	if err != nil {
		t.Fatal(err)
	}
	check(dcnflow.SolverSPMCF, sp.Schedule.EnergyTotal(m))

	ecmp, err := dcnflow.ECMPMCF(g, flows, m, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	check(dcnflow.SolverECMPMCF, ecmp.Schedule.EnergyTotal(m), dcnflow.WithECMPWidth(8), dcnflow.WithSeed(1))

	paths, err := dcnflow.ShortestPathRouting(g, flows)
	if err != nil {
		t.Fatal(err)
	}
	mcf, err := dcnflow.SolveDCFS(g, flows, paths, m)
	if err != nil {
		t.Fatal(err)
	}
	routed, err := dcnflow.NewInstanceBuilder().Graph(g).Flows(flows).Model(m).Routing(paths).Build()
	if err != nil {
		t.Fatal(err)
	}
	if sol, err := dcnflow.Solve(ctx, dcnflow.SolverDCFSMCF, routed); err != nil {
		t.Fatal(err)
	} else if sol.Energy != mcf.Schedule.EnergyTotal(m) {
		t.Errorf("dcfs-mcf: registry energy %v != legacy energy %v", sol.Energy, mcf.Schedule.EnergyTotal(m))
	}

	ao, err := dcnflow.AlwaysOnFullRate(g, flows, m)
	if err != nil {
		t.Fatal(err)
	}
	check(dcnflow.SolverAlwaysOn, ao.Energy)

	onl, err := dcnflow.SolveOnline(g, flows, m, dcnflow.OnlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	check(dcnflow.SolverGreedyOnline, onl.Schedule.EnergyTotal(m))

	ropts := dcnflow.RollingOptions{
		Policy: dcnflow.ArrivalCount{N: 1},
		DCFSR:  dcnflow.DCFSROptions{Seed: 1, WarmStart: true},
	}
	roll, _, err := dcnflow.SolveOnlineRolling(g, flows, m, ropts)
	if err != nil {
		t.Fatal(err)
	}
	check(dcnflow.SolverRollingOnline, roll.Schedule.EnergyTotal(m), dcnflow.WithRollingOptions(ropts))

	exact, err := dcnflow.SolveDCFSRExact(g, flows, m, dcnflow.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	check(dcnflow.SolverExact, exact.Energy)
}

// TestContextCancelDCFSR pins the cancellation acceptance criterion for a
// large offline solve: a context cancelled mid-solve (from the progress
// callback, after the first interval finishes) aborts within one
// Frank–Wolfe iteration / interval boundary and surfaces ctx.Err() wrapped,
// never a partial result.
func TestContextCancelDCFSR(t *testing.T) {
	ft, flows, m := mediumWorkload(t)
	inst, err := dcnflow.NewInstanceBuilder().Topology(ft).Flows(flows).Model(m).Build()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		sol, err := dcnflow.Solve(ctx, dcnflow.SolverDCFSR, inst, dcnflow.WithSeed(1))
		if sol != nil || err == nil {
			t.Fatalf("cancelled solve returned %v, %v", sol, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error does not wrap context.Canceled: %v", err)
		}
	})

	t.Run("mid-solve", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		events := 0
		sol, err := dcnflow.Solve(ctx, dcnflow.SolverDCFSR, inst,
			dcnflow.WithSeed(1),
			dcnflow.WithProgress(func(ev dcnflow.ProgressEvent) {
				events++
				cancel() // cancel as soon as the first interval completes
			}))
		if events == 0 {
			t.Fatal("progress callback never fired")
		}
		if sol != nil || err == nil {
			t.Fatalf("cancelled solve returned %v, %v", sol, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error does not wrap context.Canceled: %v", err)
		}
	})

	t.Run("lower-bound", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := dcnflow.Solve(ctx, dcnflow.SolverDCFSR, inst); !errors.Is(err, context.Canceled) {
			t.Errorf("error does not wrap context.Canceled: %v", err)
		}
	})
}

// TestContextCancelRollingReplay pins the cancellation criterion for the
// online re-optimizer: cancelling after the first epoch re-plan stops the
// replay at the next epoch boundary with ctx.Err() wrapped.
func TestContextCancelRollingReplay(t *testing.T) {
	ft, err := dcnflow.FatTree(4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := dcnflow.DiurnalWorkload(dcnflow.DiurnalConfig{
		N: 20, T0: 0, T1: 100, PeakFactor: 5,
		SizeMean: 8, SizeStddev: 2, Hosts: ft.Hosts, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := dcnflow.NewInstanceBuilder().Topology(ft).
		Flows(flows).Model(dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1000}).Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	epochs := 0
	sol, err := dcnflow.Solve(ctx, dcnflow.SolverRollingOnline, inst,
		dcnflow.WithReplanPolicy(dcnflow.ArrivalCount{N: 1}),
		dcnflow.WithSeed(1),
		dcnflow.WithProgress(func(ev dcnflow.ProgressEvent) {
			if ev.Stage == "epoch" {
				epochs++
				cancel() // cancel after the first epoch completes
			}
		}))
	if epochs == 0 {
		t.Fatal("no epoch event fired")
	}
	if epochs > 1 {
		t.Errorf("replay ran %d epochs after cancellation (want stop at the next boundary)", epochs)
	}
	if sol != nil || err == nil {
		t.Fatalf("cancelled replay returned %v, %v", sol, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
}

// TestHorizonOverrideReachesOnlineSolvers: the builder's horizon override
// is the online solvers' run window, so with idle power a wider horizon
// must be charged for (idle energy spans the window, not the flow span).
func TestHorizonOverrideReachesOnlineSolvers(t *testing.T) {
	ft, _ := dcnflow.FatTree(4, 1000)
	flows, err := dcnflow.UniformWorkload(dcnflow.WorkloadConfig{
		N: 6, T0: 10, T1: 90, SizeMean: 10, SizeStddev: 3, Hosts: ft.Hosts, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := dcnflow.PowerModel{Sigma: 1, Mu: 1, Alpha: 2, C: 1000}
	build := func(b *dcnflow.InstanceBuilder) *dcnflow.Instance {
		t.Helper()
		inst, err := b.Topology(ft).Flows(flows).Model(m).Build()
		if err != nil {
			t.Fatal(err)
		}
		return inst
	}
	narrow := build(dcnflow.NewInstanceBuilder())
	wide := build(dcnflow.NewInstanceBuilder().Horizon(dcnflow.Interval{Start: 0, End: 200}))
	for _, name := range []string{dcnflow.SolverGreedyOnline, dcnflow.SolverRollingOnline} {
		a, err := dcnflow.Solve(context.Background(), name, narrow, dcnflow.WithSeed(1))
		if err != nil {
			t.Fatalf("%s narrow: %v", name, err)
		}
		b, err := dcnflow.Solve(context.Background(), name, wide, dcnflow.WithSeed(1))
		if err != nil {
			t.Fatalf("%s wide: %v", name, err)
		}
		if b.Energy <= a.Energy {
			t.Errorf("%s: wide-horizon energy %v not above flow-span energy %v (idle span ignored)", name, b.Energy, a.Energy)
		}
	}
}

// TestUnknownSolver pins the registry's error surface.
func TestUnknownSolver(t *testing.T) {
	_, err := dcnflow.Solve(context.Background(), "simulated-annealing", tinyInstance(t))
	if !errors.Is(err, dcnflow.ErrUnknownSolver) {
		t.Fatalf("error does not wrap ErrUnknownSolver: %v", err)
	}
	if !strings.Contains(err.Error(), dcnflow.SolverDCFSR) {
		t.Errorf("error %q does not list the registered solvers", err)
	}
}

// TestInstanceValidation guards the validate-once contract.
func TestInstanceValidation(t *testing.T) {
	ft, _ := dcnflow.FatTree(4, 1000)
	flows, _ := dcnflow.UniformWorkload(dcnflow.WorkloadConfig{
		N: 4, T0: 1, T1: 50, SizeMean: 5, SizeStddev: 1, Hosts: ft.Hosts, Seed: 1,
	})
	m := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1000}
	cases := []struct {
		name  string
		build func() (*dcnflow.Instance, error)
	}{
		{"nil graph", func() (*dcnflow.Instance, error) { return dcnflow.NewInstance(nil, flows, m) }},
		{"nil flows", func() (*dcnflow.Instance, error) { return dcnflow.NewInstance(ft.Graph, nil, m) }},
		{"bad model", func() (*dcnflow.Instance, error) {
			return dcnflow.NewInstance(ft.Graph, flows, dcnflow.PowerModel{Mu: -1, Alpha: 2})
		}},
		{"short horizon", func() (*dcnflow.Instance, error) {
			return dcnflow.NewInstanceBuilder().Graph(ft.Graph).Flows(flows).Model(m).
				Horizon(dcnflow.Interval{Start: 40, End: 45}).Build()
		}},
		{"incomplete routing", func() (*dcnflow.Instance, error) {
			return dcnflow.NewInstanceBuilder().Graph(ft.Graph).Flows(flows).Model(m).
				Routing(map[dcnflow.FlowID]dcnflow.Path{}).Build()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.build(); !errors.Is(err, dcnflow.ErrBadInstance) {
				t.Errorf("error does not wrap ErrBadInstance: %v", err)
			}
		})
	}
	// Nil instance through a solver.
	if _, err := dcnflow.Solve(context.Background(), dcnflow.SolverDCFSR, nil); !errors.Is(err, dcnflow.ErrBadInstance) {
		t.Errorf("nil instance error: %v", err)
	}
}

// TestCustomRegistry exercises a private registry and custom registration.
func TestCustomRegistry(t *testing.T) {
	reg := dcnflow.NewRegistry()
	if err := reg.Register("", nil); err == nil {
		t.Error("empty name accepted")
	}
	called := false
	err := reg.Register("custom", func(cfg dcnflow.SolverConfig) (dcnflow.Solver, error) {
		called = true
		return nil, errors.New("constructed")
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("custom", func(cfg dcnflow.SolverConfig) (dcnflow.Solver, error) { return nil, nil }); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, err := reg.New("custom"); err == nil || !called {
		t.Errorf("factory not invoked: called=%v err=%v", called, err)
	}
	if got := reg.Names(); len(got) != 1 || got[0] != "custom" {
		t.Errorf("Names() = %v", got)
	}
}
