package dcnflow_test

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dcnflow"
)

// engineCorpus reduces the conformance sweep grid to its distinct
// scenarios (cells differing only in solver collapse to one entry).
func engineCorpus(t *testing.T) []dcnflow.ScenarioSpec {
	t.Helper()
	spec := conformanceSpec()
	var out []dcnflow.ScenarioSpec
	seen := make(map[string]bool)
	for _, c := range spec.Cells() {
		if !seen[c.Scenario.Name] {
			seen[c.Scenario.Name] = true
			out = append(out, c.Scenario)
		}
	}
	if len(out) == 0 {
		t.Fatal("conformance grid expanded to no scenarios")
	}
	return out
}

var engineTestOptions = []dcnflow.SolveOption{
	dcnflow.WithSolverOptions(dcnflow.SolverOptions{MaxIters: 20}),
}

// solveDirect reproduces exactly what the engine promises to match: a
// fresh instance from the spec, a fresh registry solver, the scenario seed
// applied after the shared options.
func solveDirect(t *testing.T, scen *dcnflow.ScenarioSpec, solver string) *dcnflow.Solution {
	t.Helper()
	inst, err := scen.Instance()
	if err != nil {
		t.Fatalf("building %s: %v", scen.Name, err)
	}
	opts := append(append([]dcnflow.SolveOption{}, engineTestOptions...), dcnflow.WithSeed(scen.Seed))
	sol, err := dcnflow.Solve(context.Background(), solver, inst, opts...)
	if err != nil {
		t.Fatalf("direct %s on %s: %v", solver, scen.Name, err)
	}
	return sol
}

func assertSolutionsEqual(t *testing.T, label string, want, got *dcnflow.Solution) {
	t.Helper()
	if want.Energy != got.Energy || want.LowerBound != got.LowerBound {
		t.Errorf("%s: energy/LB diverged: direct (%v, %v) vs engine (%v, %v)",
			label, want.Energy, want.LowerBound, got.Energy, got.LowerBound)
		return
	}
	if !reflect.DeepEqual(want.Stats, got.Stats) {
		t.Errorf("%s: stats diverged: %v vs %v", label, want.Stats, got.Stats)
	}
	if !reflect.DeepEqual(want.Schedule, got.Schedule) {
		t.Errorf("%s: schedules diverged", label)
	}
}

// TestEngineMatchesDirectSolve is the cache on/off bit-identicality
// regression of the acceptance criteria: for every scenario of the
// conformance corpus and every registered solver family, Engine solves —
// with the cache enabled (warm AND cold) and with it disabled — must equal
// the direct registry Solve output exactly: same energy bits, bounds,
// stats and schedules.
func TestEngineMatchesDirectSolve(t *testing.T) {
	corpus := engineCorpus(t)
	solvers := dcnflow.SolverNames()
	if len(solvers) < 8 {
		t.Fatalf("registry lists %d solvers, want the eight built-in families", len(solvers))
	}
	cached := dcnflow.NewEngine(dcnflow.EngineOptions{Options: engineTestOptions})
	uncached := dcnflow.NewEngine(dcnflow.EngineOptions{Options: engineTestOptions, DisableCache: true})
	for _, scen := range corpus {
		scen := scen
		for _, solver := range solvers {
			want := solveDirect(t, &scen, solver)
			for pass, eng := range map[string]*dcnflow.Engine{"cached": cached, "uncached": uncached} {
				r := eng.Solve(context.Background(), dcnflow.Request{Scenario: &scen, Solver: solver})
				if r.Err != nil {
					t.Fatalf("%s engine %s on %s: %v", pass, solver, scen.Name, r.Err)
				}
				assertSolutionsEqual(t, fmt.Sprintf("%s/%s/%s", pass, scen.Name, solver), want, r.Solution)
			}
		}
	}
	// The cached engine saw every scenario |solvers| times: by the second
	// visit its topology+model pairs must be warm.
	st := cached.Stats()
	if st.Hits == 0 {
		t.Errorf("cached engine recorded no cache hits over %d requests", len(corpus)*len(solvers))
	}
	if ust := uncached.Stats(); ust.Hits != 0 || ust.Size != 0 {
		t.Errorf("cache-disabled engine recorded cache state: %+v", ust)
	}
}

// TestEngineConcurrentMixedSolvesBitIdentical is the shared-engine race
// regression (run under -race by make test-race-online): N goroutines
// solving a mixed scenario x solver stream through ONE engine must each
// observe results bit-identical to a sequential reference run.
func TestEngineConcurrentMixedSolvesBitIdentical(t *testing.T) {
	corpus := engineCorpus(t)
	if len(corpus) > 6 {
		corpus = corpus[:6]
	}
	solvers := []string{
		dcnflow.SolverDCFSR, dcnflow.SolverSPMCF, dcnflow.SolverECMPMCF,
		dcnflow.SolverGreedyOnline, dcnflow.SolverRollingOnline,
	}
	type job struct {
		scen   *dcnflow.ScenarioSpec
		solver string
	}
	var jobs []job
	for i := range corpus {
		for _, s := range solvers {
			jobs = append(jobs, job{&corpus[i], s})
		}
	}
	want := make([]*dcnflow.Solution, len(jobs))
	for i, j := range jobs {
		want[i] = solveDirect(t, j.scen, j.solver)
	}

	eng := dcnflow.NewEngine(dcnflow.EngineOptions{Options: engineTestOptions})
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*len(jobs))
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each goroutine walks the jobs at a different offset so the
			// engine sees genuinely mixed concurrent traffic.
			for k := range jobs {
				i := (k + w*3) % len(jobs)
				r := eng.Solve(context.Background(), dcnflow.Request{Scenario: jobs[i].scen, Solver: jobs[i].solver})
				if r.Err != nil {
					errs <- fmt.Sprintf("goroutine %d: %s on %s: %v", w, jobs[i].solver, jobs[i].scen.Name, r.Err)
					return
				}
				if r.Solution.Energy != want[i].Energy || r.Solution.LowerBound != want[i].LowerBound ||
					!reflect.DeepEqual(r.Solution.Stats, want[i].Stats) ||
					!reflect.DeepEqual(r.Solution.Schedule, want[i].Schedule) {
					errs <- fmt.Sprintf("goroutine %d: %s on %s diverged from the sequential reference",
						w, jobs[i].solver, jobs[i].scen.Name)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

// engineBenchScenario is a cache-friendly workload: a big topology (the
// paper's fat-tree k=8: 80 switches, 128 hosts, ~1.5k directed links)
// under a small flow set, so compilation dominates a cold solve.
func engineBenchScenario() *dcnflow.ScenarioSpec {
	return &dcnflow.ScenarioSpec{
		Name:     "engine-bench",
		Topology: dcnflow.TopologySpec{Kind: "fattree", K: 8, Capacity: 1000},
		Workload: dcnflow.WorkloadSpec{Kind: "uniform", N: 4, T0: 1, T1: 12, SizeMean: 4, SizeStddev: 1, Seed: 3},
		Model:    dcnflow.ModelSpec{Mu: 1, Alpha: 2, C: 1000},
		Seed:     1,
	}
}

// engineBenchOptions keeps the relaxation single-threaded so allocation
// counts are deterministic, and short so the benchmark iterates quickly.
func engineBenchOptions() []dcnflow.SolveOption {
	return []dcnflow.SolveOption{dcnflow.WithDCFSROptions(dcnflow.DCFSROptions{
		Parallelism: 1,
		Solver:      dcnflow.SolverOptions{MaxIters: 8},
	})}
}

// TestEngineWarmCacheAllocWin pins the acceptance criterion behind
// BenchmarkEngineRepeatedSolve: a warm engine solve must allocate at most
// half of what a cold (fresh-engine) solve does, because topology
// generation, graph compilation and solver scratch are all served from the
// caches.
func TestEngineWarmCacheAllocWin(t *testing.T) {
	spec := engineBenchScenario()
	opts := engineBenchOptions()
	solveOn := func(eng *dcnflow.Engine) {
		r := eng.Solve(context.Background(), dcnflow.Request{Scenario: spec, Solver: dcnflow.SolverDCFSR, Options: opts})
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	cold := testing.AllocsPerRun(5, func() {
		solveOn(dcnflow.NewEngine(dcnflow.EngineOptions{}))
	})
	warm := dcnflow.NewEngine(dcnflow.EngineOptions{})
	solveOn(warm) // prime the caches
	warmAllocs := testing.AllocsPerRun(5, func() {
		solveOn(warm)
	})
	if warmAllocs*2 > cold {
		t.Errorf("warm solve allocates %.0f, cold %.0f: want >= 2x fewer allocs warm", warmAllocs, cold)
	}
	t.Logf("allocs/op: cold %.0f, warm %.0f (%.1fx)", cold, warmAllocs, cold/warmAllocs)
}

// TestEngineLRUEviction: the compiled-instance cache respects its bound
// and counts evictions.
func TestEngineLRUEviction(t *testing.T) {
	eng := dcnflow.NewEngine(dcnflow.EngineOptions{CacheSize: 2})
	specFor := func(k int) *dcnflow.ScenarioSpec {
		return &dcnflow.ScenarioSpec{
			Topology: dcnflow.TopologySpec{Kind: "line", K: k, Capacity: 100},
			Workload: dcnflow.WorkloadSpec{Kind: "shuffle", Hosts: 2, Deadline: 4, Size: 1},
			Model:    dcnflow.ModelSpec{Mu: 1, Alpha: 2, C: 100},
		}
	}
	for _, k := range []int{3, 4, 5, 3} {
		if _, err := eng.Compile(specFor(k)); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Size != 2 || st.Capacity != 2 {
		t.Errorf("cache size %d/%d, want 2/2", st.Size, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Errorf("expected evictions past the bound, got %+v", st)
	}
	if st.Misses != 4 {
		// k=3 was evicted by k=5 before its second visit, so all four
		// lookups miss.
		t.Errorf("expected 4 misses (the re-visit was evicted), got %+v", st)
	}
	// A warm pair re-compiles to the identical shared artifacts.
	c1, err := eng.Compile(specFor(5))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := eng.Compile(specFor(5))
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("warm Compile returned distinct compilations")
	}
	if c1.Fingerprint() == 0 || c1.Topology() == nil {
		t.Error("compiled instance carries no artifacts")
	}
}

// TestEngineInstanceSharing: requests naming the same topology, workload
// and model share one Instance; the solver seed stays per-request.
func TestEngineInstanceSharing(t *testing.T) {
	eng := dcnflow.NewEngine(dcnflow.EngineOptions{})
	a := engineBenchScenario()
	b := engineBenchScenario()
	b.Seed = 99 // solver seed differs; instance identity must not
	ia, err := eng.Instance(a)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := eng.Instance(b)
	if err != nil {
		t.Fatal(err)
	}
	if ia != ib {
		t.Error("identical topology+workload+model did not share an Instance")
	}
	c := engineBenchScenario()
	c.Workload.Seed = 77 // different generated workload -> different instance
	ic, err := eng.Instance(c)
	if err != nil {
		t.Fatal(err)
	}
	if ic == ia {
		t.Error("distinct workloads shared an Instance")
	}
}

// TestEngineRequestValidation: malformed requests come back as ErrBadRequest
// results, never panics.
func TestEngineRequestValidation(t *testing.T) {
	eng := dcnflow.NewEngine(dcnflow.EngineOptions{})
	spec := engineBenchScenario()
	inst, err := eng.Instance(spec)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]dcnflow.Request{
		"neither":          {Solver: dcnflow.SolverDCFSR},
		"both":             {Scenario: spec, Instance: inst, Solver: dcnflow.SolverDCFSR},
		"negative timeout": {Scenario: spec, Solver: dcnflow.SolverDCFSR, Timeout: -1},
	}
	for name, req := range cases {
		if r := eng.Solve(context.Background(), req); r.Err == nil {
			t.Errorf("%s: expected an error", name)
		} else if !strings.Contains(r.Err.Error(), "invalid request") {
			t.Errorf("%s: error %v does not wrap ErrBadRequest", name, r.Err)
		}
	}
	if r := eng.Solve(context.Background(), dcnflow.Request{Scenario: spec, Solver: "no-such"}); r.Err == nil {
		t.Error("unknown solver: expected an error")
	}
	bad := *spec
	bad.Topology.Kind = "torus"
	if r := eng.Solve(context.Background(), dcnflow.Request{Scenario: &bad, Solver: dcnflow.SolverDCFSR}); r.Err == nil {
		t.Error("invalid scenario: expected an error")
	}
}

// TestEngineSolveBatchDeterministicAndOrdered: batch results land in
// request order, per-request failures never abort the batch, and the
// outcome is identical for every worker count.
func TestEngineSolveBatchDeterministicAndOrdered(t *testing.T) {
	corpus := engineCorpus(t)
	reqs := []dcnflow.Request{
		{Scenario: &corpus[0], Solver: dcnflow.SolverSPMCF},
		{Solver: dcnflow.SolverDCFSR}, // invalid: neither scenario nor instance
		{Scenario: &corpus[1], Solver: dcnflow.SolverDCFSR},
		{Scenario: &corpus[0], Solver: "no-such-solver"},
		{Scenario: &corpus[2], Solver: dcnflow.SolverGreedyOnline},
	}
	run := func(workers int) []dcnflow.Result {
		eng := dcnflow.NewEngine(dcnflow.EngineOptions{Workers: workers, Options: engineTestOptions})
		return eng.SolveBatch(context.Background(), reqs)
	}
	ref := run(1)
	if len(ref) != len(reqs) {
		t.Fatalf("batch answered %d results for %d requests", len(ref), len(reqs))
	}
	if ref[1].Err == nil || ref[3].Err == nil {
		t.Fatal("invalid batch entries did not fail")
	}
	for _, i := range []int{0, 2, 4} {
		if ref[i].Err != nil {
			t.Fatalf("request %d failed: %v", i, ref[i].Err)
		}
	}
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for i := range ref {
			if (ref[i].Err == nil) != (got[i].Err == nil) {
				t.Fatalf("workers=%d: request %d error mismatch", workers, i)
			}
			if ref[i].Err != nil {
				continue
			}
			if ref[i].Solution.Energy != got[i].Solution.Energy ||
				!reflect.DeepEqual(ref[i].Solution.Stats, got[i].Solution.Stats) {
				t.Errorf("workers=%d: request %d diverged", workers, i)
			}
		}
	}
}

// TestEngineLowerBoundMemoised: the shared bound is computed once per
// (scenario, options) and matches the direct computation.
func TestEngineLowerBoundMemoised(t *testing.T) {
	corpus := engineCorpus(t)
	scen := &corpus[0]
	eng := dcnflow.NewEngine(dcnflow.EngineOptions{})
	lb1, err := eng.LowerBound(context.Background(), scen, engineTestOptions...)
	if err != nil {
		t.Fatal(err)
	}
	lb2, err := eng.LowerBound(context.Background(), scen, engineTestOptions...)
	if err != nil {
		t.Fatal(err)
	}
	if lb1 != lb2 {
		t.Fatalf("memoised bound drifted: %v vs %v", lb1, lb2)
	}
	inst, err := scen.Instance()
	if err != nil {
		t.Fatal(err)
	}
	want, err := dcnflow.LowerBound(inst.Graph(), inst.Flows(), inst.Model(),
		dcnflow.DCFSROptions{Solver: dcnflow.SolverOptions{MaxIters: 20}})
	if err != nil {
		t.Fatal(err)
	}
	if lb1 != want {
		t.Fatalf("engine bound %v differs from direct bound %v", lb1, want)
	}
}
